package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"xpe/internal/core"
	"xpe/internal/gen"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/metrics"
	"xpe/internal/stream"
	"xpe/internal/trace"
	"xpe/internal/xmlhedge"
)

// BenchResult is one benchmark workload's measurements, in the units Go's
// testing package reports plus a throughput figure.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	NodesPerSec float64 `json:"nodes_per_sec,omitempty"`
}

// BenchReport is the layout of BENCH_core.json: the perf-regression
// baseline for the in-memory, streaming, and bulk evaluation paths, plus
// the measured cost of attaching a metrics sink.
type BenchReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Quick     bool   `json:"quick"`
	// MetricsOverheadPct is what attaching an engine-wide sink costs on
	// the in-memory hot path: the median of paired sink/no-sink ns/op
	// ratios measured in adjacent windows (pairing cancels the
	// time-correlated scheduling noise a single-window delta would carry).
	// The no-sink path is the regression-gated hot path.
	MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
	// CacheHitSpeedup is cold-compile ns/op divided by cache-hit
	// recompile ns/op for the engine's compiled-query cache: how much
	// cheaper a generation-forced recompile is when the (source,
	// generation) entry is already cached. Filled by cmd/xpebench (the
	// facade cannot be imported from here).
	CacheHitSpeedup float64 `json:"cache_hit_speedup,omitempty"`
	// FastPathOverheadPct is what the unchanged-generation revalidation
	// check (two atomic loads per evaluation entry) costs relative to
	// evaluating the underlying compiled query directly, as the median of
	// paired-round ratios. Filled by cmd/xpebench.
	FastPathOverheadPct float64 `json:"fast_path_overhead_pct,omitempty"`
	// DegradedOverheadPct is what fault containment costs on a degraded
	// stream: a feed with 1% of its records poisoned (broken markup),
	// drained under the skip policy, versus the same feed clean — the
	// median of paired-round ns/op ratios. It prices the recovery path
	// (resync scan + per-record fresh decoders), not the happy path.
	DegradedOverheadPct float64 `json:"degraded_overhead_pct"`
	// PrefilterSpeedup is the stream-prefilter-off / stream-prefilter-on
	// ns/op ratio over the low-selectivity corpus (15 of 16 records lack
	// the query's required labels): how much throughput the raw-byte
	// prefilter cascade buys when most records cannot match. Median of
	// paired rounds.
	PrefilterSpeedup float64 `json:"prefilter_speedup,omitempty"`
	// PrefilterSkipRate is the fraction of the corpus's records the skim
	// rejected without parsing in the prefiltered run.
	PrefilterSkipRate float64 `json:"prefilter_skip_rate,omitempty"`
	// SharedPassSpeedup is what serving N registered queries from one
	// shared pass saves against N independent passes over the same feed:
	// the 8-passes ns/op divided by the single-RunMulti-pass ns/op on the
	// selective topic corpus (each record relevant to ~1 query), as the
	// median of paired rounds. The shared pass splits, skims, and parses
	// the feed once and the union prefilter's per-query verdict bits gate
	// each record to the queries whose required labels it carries.
	SharedPassSpeedup float64 `json:"shared_pass_speedup,omitempty"`
	// LazyBlowupAvoided is the eager determinization's membership-DFA
	// state count divided by the states the lazy DHA actually materialized
	// evaluating a document sample, for the adversarial k-th-from-end
	// family at the recorded k — the compile-time blowup the lazy path
	// never paid.
	LazyBlowupAvoided float64 `json:"lazy_blowup_avoided,omitempty"`
	// TraceOverheadPct is what the per-record tracing hooks cost while
	// tracing is disabled (no flight recorder, no slow-record callback):
	// the nil-checked hook sequence the stream pipeline runs per record,
	// wrapped around one in-memory evaluation and interleaved op-by-op
	// with the bare evaluation — the ratio of the two sides' median
	// per-op durations. Gated ≤ 1% by `make trace-overhead`.
	TraceOverheadPct float64 `json:"trace_overhead_pct"`
	// TelemetryOverheadPct is what the serving telemetry costs end to
	// end: a feed post through serve.Server.ServeHTTP with the default
	// telemetry (rollups, request ids, per-feed recorder, periodic
	// /metrics scrapes) against an identical server with
	// DisableTelemetry, interleaved in paired rounds — the median pair
	// ratio. Measured by cmd/xpebench (the serving layer sits above this
	// package); gated ≤ 1% by `make telemetry-overhead`.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
	// ScalingEfficiency maps a worker count ("4", "8", "16") to that
	// run's nodes/sec divided by the single-worker run's, over the same
	// stream-* workload. On a box with real parallelism the w4 figure
	// approaches min(4, cores); on one core the interesting property is
	// that it stays near 1.0 — the batched pipeline's coordination
	// overhead, not speedup, is what a single-core figure prices.
	ScalingEfficiency map[string]float64 `json:"scaling_efficiency,omitempty"`
	PeakRSSBytes      int64              `json:"peak_rss_bytes"`
	Results           []BenchResult      `json:"results"`
}

// Measure times fn until minTime has elapsed (at least twice) and reports
// per-op duration and per-op allocation deltas from runtime.MemStats.
// nodes is the per-op node count driving the throughput figure (0 = none).
// Exported so cmd/xpebench can extend the report with workloads that need
// the facade (which this package cannot import).
func Measure(name string, nodes int64, minTime time.Duration, fn func()) BenchResult {
	fn() // warm up: arenas, lazy automata
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var iters int64
	start := time.Now()
	var elapsed time.Duration
	for {
		fn()
		iters++
		elapsed = time.Since(start)
		if elapsed >= minTime && iters >= 2 {
			break
		}
	}
	runtime.ReadMemStats(&after)
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(iters)
	res := BenchResult{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     nsPerOp,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
	if nodes > 0 && nsPerOp > 0 {
		res.NodesPerSec = float64(nodes) / nsPerOp * 1e9
	}
	return res
}

// peakRSS reads the process high-water RSS from /proc/self/status (VmHWM);
// on platforms without procfs it falls back to the Go heap's Sys figure.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err == nil {
		for _, line := range bytes.Split(data, []byte("\n")) {
			if !bytes.HasPrefix(line, []byte("VmHWM:")) {
				continue
			}
			fields := bytes.Fields(line[len("VmHWM:"):])
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(string(fields[0]), 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// countEach runs SelectEach discarding matches (the zero-allocation hot
// path benchmarks gate on).
func countEach(cq *core.CompiledQuery, doc hedge.Hedge) int {
	n := 0
	cq.SelectEach(doc, func(hedge.Path, *hedge.Node) bool { n++; return true })
	return n
}

// BenchJSON runs the perf-regression workloads and returns the report.
// quick shrinks sizes and time budgets for CI (`make bench-json`); the full
// run is the recorded baseline in BENCH_core.json.
func BenchJSON(quick bool) (*BenchReport, error) {
	minTime := 300 * time.Millisecond
	memSizes := []int{10000, 100000}
	streamSize, bulkDocs, bulkSize := 100000, 64, 4000
	if quick {
		minTime = 40 * time.Millisecond
		memSizes = []int{10000}
		streamSize, bulkDocs, bulkSize = 20000, 16, 2000
	}
	rep := &BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}

	names := NewDocEnv()
	cq, err := CompileQuery(names, SelectQuery)
	if err != nil {
		return nil, err
	}

	// In-memory select: the paper's Algorithm 1 hot path. The no-sink /
	// sink pair is measured in alternating rounds, keeping each side's best
	// round — scheduling noise between two separate windows would otherwise
	// dwarf the per-document flush the overhead figure gates (< 3%).
	docs := map[int]hedge.Hedge{}
	for _, n := range memSizes {
		docs[n] = gen.Document(gen.DefaultDocConfig(), n)
	}
	overheadDoc := docs[memSizes[0]]
	overheadNodes := int64(overheadDoc.Size())
	pairTime := minTime / 4
	if pairTime < 10*time.Millisecond {
		pairTime = 10 * time.Millisecond
	}
	var sink metrics.Eval
	var base, withSink BenchResult
	var ratios []float64
	rounds := 7
	if quick {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		cq.SetMetrics(nil)
		r := Measure("select-"+sizeName(memSizes[0])+"-nosink", overheadNodes,
			pairTime, func() { countEach(cq, overheadDoc) })
		if round == 0 || r.NsPerOp < base.NsPerOp {
			base = r
		}
		cq.SetMetrics(&sink)
		s := Measure("select-"+sizeName(memSizes[0])+"-sink", overheadNodes,
			pairTime, func() { countEach(cq, overheadDoc) })
		if round == 0 || s.NsPerOp < withSink.NsPerOp {
			withSink = s
		}
		ratios = append(ratios, s.NsPerOp/r.NsPerOp)
	}
	cq.SetMetrics(nil)
	rep.Results = append(rep.Results, base)
	for _, n := range memSizes[1:] {
		doc := docs[n]
		rep.Results = append(rep.Results, Measure(
			"select-"+sizeName(n)+"-nosink", int64(doc.Size()), minTime,
			func() { countEach(cq, doc) }))
	}
	rep.Results = append(rep.Results, withSink)
	rep.MetricsOverheadPct = (median(ratios) - 1) * 100

	// Disabled-tracing overhead: the pipeline's per-record trace path when
	// nothing is attached is one sink nil-check, one boolean, and the
	// branches guarding each would-be clock read (see stream.runSequential).
	// The hooked side wraps one evaluation in exactly that hook sequence —
	// against a nil sink, so every branch takes its disabled arm.
	//
	// The 1% budget is tighter than the metrics pair's 3%, and separate
	// measurement windows drift past it on a noisy host (frequency
	// scaling, cgroup throttling can shift whole windows by more than the
	// budget). So the two sides are interleaved at the single-operation
	// level: adjacent ops sample near-identical machine conditions, and
	// the overhead is the median of per-pair duration ratios — each ratio
	// cancels the conditions its own pair ran under, and the median
	// shrugs off GC pauses and stalls that hit individual ops. Which side
	// runs first alternates pair by pair, so cache- or scheduler-position
	// effects cannot systematically favor one side.
	var nilSink *trace.EventSink
	bareOp := func() { countEach(cq, overheadDoc) }
	hookedOp := func() {
		tracing := nilSink.Enabled()
		var t0 time.Time
		if tracing {
			t0 = time.Now()
		}
		countEach(cq, overheadDoc)
		if tracing {
			_ = trace.Since(t0)
			_ = nilSink.Drain()
		}
	}
	bareOp()
	hookedOp() // warm up
	runtime.GC()
	var tBefore, tAfter runtime.MemStats
	runtime.ReadMemStats(&tBefore)
	traceBudget := 12 * minTime
	var bareNS, hookedNS, pairRatios []float64
	traceStart := time.Now()
	for time.Since(traceStart) < traceBudget || len(bareNS) < 16 {
		bareFirst := len(bareNS)%2 == 0
		s0 := time.Now()
		if bareFirst {
			bareOp()
		} else {
			hookedOp()
		}
		s1 := time.Now()
		if bareFirst {
			hookedOp()
		} else {
			bareOp()
		}
		s2 := time.Now()
		first, second := float64(s1.Sub(s0)), float64(s2.Sub(s1))
		b, h := first, second
		if !bareFirst {
			b, h = second, first
		}
		bareNS = append(bareNS, b)
		hookedNS = append(hookedNS, h)
		pairRatios = append(pairRatios, h/b)
	}
	runtime.ReadMemStats(&tAfter)
	// Both sides run the same evaluation (the hooks neither allocate nor
	// free), so the jointly measured allocation deltas are split evenly.
	traceOps := float64(2 * len(bareNS))
	traceRes := func(name string, nsPerOp float64, iters int) BenchResult {
		res := BenchResult{Name: name, Iterations: int64(iters), NsPerOp: nsPerOp,
			AllocsPerOp: float64(tAfter.Mallocs-tBefore.Mallocs) / traceOps,
			BytesPerOp:  float64(tAfter.TotalAlloc-tBefore.TotalAlloc) / traceOps}
		if nsPerOp > 0 {
			res.NodesPerSec = float64(overheadNodes) / nsPerOp * 1e9
		}
		return res
	}
	traceBase := traceRes("select-"+sizeName(memSizes[0])+"-notrace", median(bareNS), len(bareNS))
	traceHooked := traceRes("select-"+sizeName(memSizes[0])+"-trace-disabled", median(hookedNS), len(hookedNS))
	rep.Results = append(rep.Results, traceBase, traceHooked)
	rep.TraceOverheadPct = (median(pairRatios) - 1) * 100

	// Streaming: split + evaluate + deliver over a serialized document.
	streamDoc := gen.Document(gen.DefaultDocConfig(), streamSize)
	xmlStr, err := xmlhedge.ToString(streamDoc)
	if err != nil {
		return nil, err
	}
	xmlBytes := []byte(xmlStr)
	rep.ScalingEfficiency = map[string]float64{}
	var streamW1 float64
	for _, workers := range []int{1, 4, 8, 16} {
		w := workers
		// Best of several short rounds, the same discipline the degraded
		// pair and the bench-gate re-measurement use: these figures are the
		// committed regression baseline, and a single long window is one
		// sample of the box's noise where the best round is a stable
		// estimate of capability.
		var best BenchResult
		for round := 0; round < rounds; round++ {
			r := Measure(
				"stream-"+sizeName(streamSize)+"-w"+strconv.Itoa(w),
				int64(streamDoc.Size()), pairTime, func() {
					_, err := stream.Run(context.Background(), bytes.NewReader(xmlBytes), cq,
						stream.Config{Workers: w}, func(*stream.Result) error { return nil })
					if err != nil && err != io.EOF {
						panic(err)
					}
				})
			if round == 0 || r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		rep.Results = append(rep.Results, best)
		if w == 1 {
			streamW1 = best.NodesPerSec
		} else if streamW1 > 0 {
			rep.ScalingEfficiency[strconv.Itoa(w)] = best.NodesPerSec / streamW1
		}
	}

	// Degraded streaming: a corpus of records split on "doc" with 1% of the
	// records' markup broken, drained under the skip policy, paired against
	// the identical corpus clean. Rounds alternate so scheduling noise
	// cancels in the ratio (same discipline as the metrics overhead above).
	recCount, recSize := 100, streamSize/100
	if quick {
		recCount, recSize = 50, streamSize/50
	}
	records := make([]string, recCount)
	var degradedNodes int64
	for i := range records {
		cfg := gen.DefaultDocConfig()
		cfg.Seed = int64(i + 1)
		d := gen.Document(cfg, recSize)
		degradedNodes += int64(d.Size())
		s, err := xmlhedge.ToString(d)
		if err != nil {
			return nil, err
		}
		records[i] = s
	}
	// The poison breaks the record's own markup only: no "<doc" byte
	// sequence survives past the error point, so resync lands exactly on
	// the next record.
	const poison = "<doc><section><figure></table></section></doc>"
	poisonEvery := recCount / max(1, recCount/100)
	buildFeed := func(poisoned bool) []byte {
		var b bytes.Buffer
		b.WriteString("<corpus>")
		for i, r := range records {
			if poisoned && i%poisonEvery == poisonEvery/2 {
				b.WriteString(poison)
			} else {
				b.WriteString(r)
			}
		}
		b.WriteString("</corpus>")
		return b.Bytes()
	}
	cleanFeed, poisonFeed := buildFeed(false), buildFeed(true)
	degCfg := stream.Config{
		Split:         "doc",
		Workers:       4,
		OnRecordError: func(*stream.RecordError) error { return nil },
	}
	runFeed := func(feed []byte) {
		_, err := stream.Run(context.Background(), bytes.NewReader(feed), cq,
			degCfg, func(*stream.Result) error { return nil })
		if err != nil {
			panic(err)
		}
	}
	var degClean, degPoison BenchResult
	var degRatios []float64
	for round := 0; round < rounds; round++ {
		r := Measure("stream-degraded-clean", degradedNodes, pairTime,
			func() { runFeed(cleanFeed) })
		if round == 0 || r.NsPerOp < degClean.NsPerOp {
			degClean = r
		}
		p := Measure("stream-degraded-1pct", degradedNodes, pairTime,
			func() { runFeed(poisonFeed) })
		if round == 0 || p.NsPerOp < degPoison.NsPerOp {
			degPoison = p
		}
		degRatios = append(degRatios, p.NsPerOp/r.NsPerOp)
	}
	rep.Results = append(rep.Results, degClean, degPoison)
	rep.DegradedOverheadPct = (median(degRatios) - 1) * 100

	// Prefilter cascade: the same pipeline over a low-selectivity feed,
	// with and without the raw-byte skim. Paired best-of-rounds like the
	// degraded pair; both runs deliver identical matches, so nodes/sec
	// over the same logical input is the honest comparison.
	offFeed, err := prefilterFeed(quick, false)
	if err != nil {
		return nil, err
	}
	onFeed, err := prefilterFeed(quick, true)
	if err != nil {
		return nil, err
	}
	var preOff, preOn BenchResult
	var preRatios []float64
	for round := 0; round < rounds; round++ {
		o := offFeed.measure(cq, "stream-prefilter-off", pairTime)
		if round == 0 || o.NsPerOp < preOff.NsPerOp {
			preOff = o
		}
		p := onFeed.measure(cq, "stream-prefilter-on", pairTime)
		if round == 0 || p.NsPerOp < preOn.NsPerOp {
			preOn = p
		}
		preRatios = append(preRatios, o.NsPerOp/p.NsPerOp)
	}
	rep.Results = append(rep.Results, preOff, preOn)
	rep.PrefilterSpeedup = median(preRatios)
	preStats, err := stream.Run(context.Background(), bytes.NewReader(onFeed.data), cq,
		onFeed.cfg, func(*stream.Result) error { return nil })
	if err != nil {
		return nil, err
	}
	if total := preStats.Records + preStats.Prefiltered; total > 0 {
		rep.PrefilterSkipRate = float64(preStats.Prefiltered) / float64(total)
	}

	// Shared multi-query pass: the serving shape — N registered queries,
	// one feed post — against the N-scans shape it replaces. Paired
	// best-of-rounds; both sides deliver identical per-query matches.
	sharedFeed, err := sharedPassFeed(quick, false)
	if err != nil {
		return nil, err
	}
	indepFeed, err := sharedPassFeed(quick, true)
	if err != nil {
		return nil, err
	}
	var spShared, spIndep BenchResult
	var spRatios []float64
	for round := 0; round < rounds; round++ {
		s := sharedFeed.measure(nil, "stream-sharedpass-8q", pairTime)
		if round == 0 || s.NsPerOp < spShared.NsPerOp {
			spShared = s
		}
		i := indepFeed.measure(nil, "stream-sharedpass-independent", pairTime)
		if round == 0 || i.NsPerOp < spIndep.NsPerOp {
			spIndep = i
		}
		spRatios = append(spRatios, i.NsPerOp/s.NsPerOp)
	}
	rep.Results = append(rep.Results, spShared, spIndep)
	rep.SharedPassSpeedup = median(spRatios)

	// Lazy determinization: the adversarial k-th-from-end family, whose
	// eager Theorem 1 subset construction doubles per k. The eager compile
	// pays the full blowup up front; the lazy DHA materializes only the
	// states a document sample reaches — the ratio is the blowup avoided.
	const advK = 12
	advNames := ha.NewNames()
	for _, s := range []string{"a", "b", "c", "r"} {
		advNames.Syms.Intern(s)
	}
	advSrc := gen.KthFromEndPHR(advK)
	var eagerStates int
	eagerCompile := Measure("compile-adversarial-k"+strconv.Itoa(advK)+"-eager", 0, pairTime, func() {
		c, err := core.CompilePHR(core.MustParsePHR(advSrc), advNames)
		if err != nil {
			panic(err)
		}
		eagerStates = c.MaxComponentStates()
	})
	advQ, err := core.ParseQuery(advSrc)
	if err != nil {
		return nil, err
	}
	lazyCompile := Measure("compile-adversarial-k"+strconv.Itoa(advK)+"-lazy", 0, pairTime, func() {
		if _, err := core.CompileQueryOpt(advQ, advNames, core.Options{LazyDeterminize: true}); err != nil {
			panic(err)
		}
	})
	rep.Results = append(rep.Results, eagerCompile, lazyCompile)
	lazyCQ, err := core.CompileQueryOpt(advQ, advNames, core.Options{LazyDeterminize: true})
	if err != nil {
		return nil, err
	}
	// A modest document sample: the states the lazy DHA builds are bounded
	// by the sibling-suffix diversity these rows actually exhibit, not by
	// the 2^k the eager construction enumerates up front.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 24; i++ {
		countEach(lazyCQ, gen.SiblingRow(rng, 32))
	}
	if built := lazyCQ.LazyStats().StatesBuilt; built > 0 {
		rep.LazyBlowupAvoided = float64(eagerStates) / float64(built)
	}

	// Bulk: the shared-compiled-query server shape.
	bulk := make([]hedge.Hedge, bulkDocs)
	var bulkNodes int64
	for i := range bulk {
		bulk[i] = gen.Document(gen.DefaultDocConfig(), bulkSize)
		bulkNodes += int64(bulk[i].Size())
	}
	rep.Results = append(rep.Results, Measure(
		"bulk-"+strconv.Itoa(bulkDocs)+"x"+sizeName(bulkSize), bulkNodes, minTime,
		func() { cq.BulkSelect(bulk, 4) }))

	rep.PeakRSSBytes = peakRSS()
	return rep, nil
}

// WriteBenchJSON encodes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// median returns the median of xs (xs is reordered).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// sizeName renders a node count compactly: 10000 → "10k".
func sizeName(n int) string {
	if n%1000 == 0 {
		return strconv.Itoa(n/1000) + "k"
	}
	return strconv.Itoa(n)
}
