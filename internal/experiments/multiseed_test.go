package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func discardLogf(string, ...any) {}

func TestMeasureStreamSeedsSmoke(t *testing.T) {
	stats, err := MeasureStreamSeeds(true, []int64{1, 2}, discardLogf)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(trajectoryWorkloads) {
		t.Fatalf("got %d workloads, want %d", len(stats), len(trajectoryWorkloads))
	}
	for _, st := range stats {
		if !strings.HasPrefix(st.Name, "stream-20k-") {
			t.Errorf("quick workload name %q should carry the quick size", st.Name)
		}
		if len(st.Runs) != 2 {
			t.Fatalf("%s: %d runs, want one per seed", st.Name, len(st.Runs))
		}
		if st.Min <= 0 || st.Max < st.Min || st.Mean < st.Min || st.Mean > st.Max {
			t.Errorf("%s: inconsistent stats mean=%f min=%f max=%f", st.Name, st.Mean, st.Min, st.Max)
		}
		for _, r := range st.Runs {
			if r.NodesPerSec <= 0 {
				t.Errorf("%s seed %d: no throughput", st.Name, r.Seed)
			}
		}
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.ndjson")
	if got, err := LoadHistory(path); err != nil || got != nil {
		t.Fatalf("missing file: %v, %v; want empty, nil", got, err)
	}
	e1 := HistoryEntry{Date: "2026-08-01", GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64",
		Workloads: []SeedStat{{Name: "stream-100k-w1", Mean: 100, Min: 90, Max: 110,
			Runs: []SeedRun{{Seed: 42, NodesPerSec: 90}, {Seed: 123, NodesPerSec: 110}}}}}
	e2 := e1
	e2.Date = "2026-08-02"
	if err := AppendHistory(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Date != "2026-08-01" || got[1].Date != "2026-08-02" {
		t.Fatalf("round trip lost entries: %+v", got)
	}
	if len(got[0].Workloads) != 1 || got[0].Workloads[0].Runs[1].NodesPerSec != 110 {
		t.Fatalf("round trip lost workload detail: %+v", got[0].Workloads)
	}
}

// histEntry fabricates one comparable trajectory entry with a single
// workload whose seeds all measured near mean.
func histEntry(date string, mean, min, max float64) HistoryEntry {
	return HistoryEntry{Date: date, GOOS: "linux", GOARCH: "amd64",
		Workloads: []SeedStat{{Name: "stream-100k-w4", Mean: mean, Min: min, Max: max,
			Runs: []SeedRun{{Seed: 42, NodesPerSec: min}, {Seed: 123, NodesPerSec: max}}}}}
}

func TestGateHistory(t *testing.T) {
	hist := []HistoryEntry{
		histEntry("2026-08-01", 1000, 950, 1050),
		histEntry("2026-08-02", 1020, 980, 1060),
	}
	cases := []struct {
		name string
		cur  HistoryEntry
		fail bool
	}{
		// All three legs: >10% below the mean of means (1010), below the
		// slowest recorded run (950), every seed below the mean.
		{"consistent regression", histEntry("2026-08-03", 800, 780, 820), true},
		// Magnitude only: within the historical spread.
		{"within historical spread", histEntry("2026-08-03", 960, 940, 980), false},
		// Magnitude + effect size, but one seed beat the historical mean:
		// seeds disagree, so it is noise.
		{"seeds disagree", histEntry("2026-08-03", 900, 700, 1100), false},
		// No regression at all.
		{"healthy", histEntry("2026-08-03", 1005, 960, 1050), false},
	}
	for _, tc := range cases {
		err := GateHistory(hist, tc.cur, 10, discardLogf)
		if tc.fail && err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
		}
		if !tc.fail && err != nil {
			t.Errorf("%s: gate failed: %v", tc.name, err)
		}
	}

	// Incomparable history (different platform / quick flag) never gates.
	quick := histEntry("2026-08-03", 500, 490, 510)
	quick.Quick = true
	if err := GateHistory(hist, quick, 10, discardLogf); err != nil {
		t.Errorf("incomparable entries must not gate: %v", err)
	}

	// A workload history has never seen passes.
	novel := HistoryEntry{GOOS: "linux", GOARCH: "amd64",
		Workloads: []SeedStat{{Name: "stream-1k-w1", Mean: 1, Min: 1, Max: 1}}}
	if err := GateHistory(hist, novel, 10, discardLogf); err != nil {
		t.Errorf("novel workload must not gate: %v", err)
	}

	// Empty history passes wholesale.
	if err := GateHistory(nil, hist[0], 10, discardLogf); err != nil {
		t.Errorf("empty history must not gate: %v", err)
	}
}
