package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "demo",
		Claim:  "none",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note"},
	}
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"== EX: demo", "claim: none", "333", "note:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLayeredGrammarShape(t *testing.T) {
	g := LayeredGrammar(3)
	for _, want := range []string{"element section1", "element section3", "start = doc"} {
		if !strings.Contains(g, want) {
			t.Fatalf("grammar missing %q", want)
		}
	}
}

// TestExperimentsQuick runs the fast experiments end-to-end so the harness
// cannot rot. The heavyweight scaling experiments (E1, E2, E4, E5) are
// exercised by `go test -bench` and cmd/xpebench.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, fn := range []func(bool) (*Table, error){E3, E6, E7, E8} {
		tab, err := fn(true)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", tab.ID)
		}
		var b strings.Builder
		tab.Render(&b)
		if !strings.Contains(b.String(), tab.ID) {
			t.Fatalf("%s render broken", tab.ID)
		}
	}
}

func TestE3ShowsExponentialShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := E3(true)
	if err != nil {
		t.Fatal(err)
	}
	// The adversarial membership-DFA states must grow 4x per +2 in k.
	var prev int
	for i, row := range tab.Rows {
		var states int
		if _, err := sscan(row[2], &states); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if i > 0 && states != prev*4-6 && states < prev*3 {
			t.Fatalf("no exponential growth: %d after %d", states, prev)
		}
		prev = states
	}
}

func sscan(s string, out *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return n, nil
}
