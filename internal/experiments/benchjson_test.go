package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestBenchJSONQuick runs the quick perf-regression workloads end to end
// and checks the report is complete and valid JSON — the same path `make
// bench-json` exercises in CI.
func TestBenchJSONQuick(t *testing.T) {
	rep, err := BenchJSON(true)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"select-10k-nosink", "select-10k-sink",
		"select-10k-notrace", "select-10k-trace-disabled",
		"stream-20k-w1", "stream-20k-w4", "stream-20k-w8", "stream-20k-w16",
		"stream-degraded-clean", "stream-degraded-1pct",
		"stream-prefilter-off", "stream-prefilter-on",
		"stream-sharedpass-8q", "stream-sharedpass-independent",
		"compile-adversarial-k12-eager", "compile-adversarial-k12-lazy",
		"bulk-16x2k"}
	if len(rep.Results) != len(wantNames) {
		t.Fatalf("got %d results, want %d", len(rep.Results), len(wantNames))
	}
	for _, w := range []string{"4", "8", "16"} {
		if rep.ScalingEfficiency[w] <= 0 {
			t.Errorf("scaling_efficiency[%s] = %v, want > 0", w, rep.ScalingEfficiency[w])
		}
	}
	for i, r := range rep.Results {
		if r.Name != wantNames[i] {
			t.Errorf("result %d = %q, want %q", i, r.Name, wantNames[i])
		}
		if r.Iterations < 2 || r.NsPerOp <= 0 {
			t.Errorf("%s: iterations=%d ns/op=%.0f, want measured values", r.Name, r.Iterations, r.NsPerOp)
		}
		// The adversarial compile workloads measure build time, not
		// document throughput; they carry no node count.
		if r.NodesPerSec <= 0 && !strings.HasPrefix(r.Name, "compile-adversarial-") {
			t.Errorf("%s: nodes/sec = %.0f, want > 0", r.Name, r.NodesPerSec)
		}
	}
	if rep.PrefilterSpeedup <= 0 {
		t.Errorf("prefilter_speedup = %v, want > 0", rep.PrefilterSpeedup)
	}
	if rep.PrefilterSkipRate <= 0 || rep.PrefilterSkipRate >= 1 {
		t.Errorf("prefilter_skip_rate = %v, want in (0,1)", rep.PrefilterSkipRate)
	}
	if rep.SharedPassSpeedup <= 1 {
		t.Errorf("shared_pass_speedup = %v, want > 1", rep.SharedPassSpeedup)
	}
	if rep.LazyBlowupAvoided <= 1 {
		t.Errorf("lazy_blowup_avoided = %v, want > 1", rep.LazyBlowupAvoided)
	}
	if rep.PeakRSSBytes <= 0 {
		t.Errorf("peak RSS = %d, want > 0", rep.PeakRSSBytes)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round BenchReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip as JSON: %v", err)
	}
	if len(round.Results) != len(rep.Results) || round.GoVersion != rep.GoVersion {
		t.Errorf("round-trip drifted: %+v", round)
	}
}
