// Package experiments implements the evaluation harness of the
// reproduction. The paper (a PODS theory paper) reports no measured tables;
// each experiment here regenerates one of its complexity claims or
// constructions as a measurable table — see DESIGN.md §3 for the index and
// EXPERIMENTS.md for recorded results.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"xpe/internal/caterpillar"
	"xpe/internal/core"
	"xpe/internal/gen"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/hre"
	"xpe/internal/pathexpr"
	"xpe/internal/schema"
	"xpe/internal/xpath"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render prints the table as aligned text.
func (t *Table) Render(w *strings.Builder) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "  %-*s", widths[i], c)
		}
		w.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	w.WriteByte('\n')
}

// Queries used across experiments (over the gen.DocGrammar vocabulary).
const (
	// PathQuery is a classical path expression: figures under section
	// chains under doc.
	PathQuery = "figure section* [* ; doc ; *]"
	// SiblingQuery needs sibling awareness: figures immediately followed
	// by a table.
	SiblingQuery = "[* ; figure ; table .] (section|doc)*"
	// SelectQuery combines a subhedge HRE with an envelope PHR: sections
	// containing only figures.
	SelectQuery = "select(figure*; [* ; section ; *] (section|doc)*)"
)

// NewDocEnv interns the document vocabulary and returns the Names.
func NewDocEnv() *ha.Names {
	names := ha.NewNames()
	for _, s := range []string{"doc", "section", "figure", "table", "para"} {
		names.Syms.Intern(s)
	}
	names.Vars.Intern(hedge.TextVar)
	return names
}

// CompileQuery compiles a query over the doc vocabulary.
func CompileQuery(names *ha.Names, src string) (*core.CompiledQuery, error) {
	q, err := core.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return core.CompileQuery(q, names)
}

// Sizes returns the document sizes used by the scaling experiments.
func Sizes(quick bool) []int {
	if quick {
		return []int{1000, 10000, 100000}
	}
	return []int{1000, 10000, 100000, 1000000}
}

// timeIt runs fn repeatedly until it has consumed ~50ms (at least once) and
// returns the per-run duration. A GC runs first so earlier experiments'
// garbage does not tax this measurement.
func timeIt(fn func()) time.Duration {
	fn() // warm up: evaluation arenas, lazy automata, page cache
	runtime.GC()
	runs := 0
	start := time.Now()
	for {
		fn()
		runs++
		if d := time.Since(start); d > 50*time.Millisecond || runs >= 1000 {
			return d / time.Duration(runs)
		}
	}
}

// E1 — Theorem 3 / §6: evaluating the hedge regular expression side of a
// selection query is linear in the number of nodes (constant ns/node).
func E1(quick bool) (*Table, error) {
	names := NewDocEnv()
	cq, err := CompileQuery(names, SelectQuery)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E1",
		Title:  "HRE evaluation scales linearly in document size",
		Claim:  "Theorem 3 / §6: one bottom-up traversal, O(nodes) after compilation",
		Header: []string{"nodes", "located", "time/doc", "ns/node"},
	}
	for _, n := range Sizes(quick) {
		doc := gen.Document(gen.DefaultDocConfig(), n)
		var located int
		d := timeIt(func() { located = len(cq.Select(doc).Paths) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(doc.Size()), fmt.Sprint(located),
			d.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(doc.Size())),
		})
	}
	t.Notes = append(t.Notes, "linear ⇔ ns/node stays roughly constant across rows")
	return t, nil
}

// E2 — Algorithm 1: locating all nodes matching a pointed hedge
// representation takes two traversals, linear in the number of nodes.
func E2(quick bool) (*Table, error) {
	names := NewDocEnv()
	cq, err := CompileQuery(names, SiblingQuery)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E2",
		Title:  "PHR two-traversal evaluation scales linearly in document size",
		Claim:  "Algorithm 1 (§7): two depth-first traversals, O(nodes)",
		Header: []string{"nodes", "located", "time/doc", "ns/node"},
	}
	for _, n := range Sizes(quick) {
		doc := gen.Document(gen.DefaultDocConfig(), n)
		var located int
		d := timeIt(func() { located = len(cq.Select(doc).Paths) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(doc.Size()), fmt.Sprint(located),
			d.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", float64(d.Nanoseconds())/float64(doc.Size())),
		})
	}
	t.Notes = append(t.Notes, "linear ⇔ ns/node stays roughly constant across rows")
	return t, nil
}

// E3 — §6/§9: compilation is exponential in the expression size in the
// worst case (the k-th-from-end family) but cheap on typical queries (the
// paper's "determinization usually works" conjecture).
func E3(quick bool) (*Table, error) {
	ks := []int{2, 4, 6, 8, 10, 12}
	if quick {
		ks = []int{2, 4, 6, 8, 10}
	}
	t := &Table{
		ID:     "E3",
		Title:  "Query compilation: adversarial vs typical expression families",
		Claim:  "§6: determinization is exponential in the worst case, efficient typically",
		Header: []string{"k", "adv compile", "adv membership-DFA states", "typ compile", "typ states"},
	}
	for _, k := range ks {
		names := ha.NewNames()
		for _, s := range []string{"a", "b", "c", "r"} {
			names.Syms.Intern(s)
		}
		adv := core.MustParsePHR(gen.KthFromEndPHR(k))
		var advStates int
		advTime := timeFnOnce(func() error {
			c, err := core.CompilePHR(adv, names)
			if err != nil {
				return err
			}
			advStates = c.MaxComponentStates()
			return nil
		})
		names2 := ha.NewNames()
		for _, s := range []string{"c", "r"} {
			names2.Syms.Intern(s)
		}
		typ := core.MustParsePHR(gen.TypicalPHR(k))
		var typStates int
		typTime := timeFnOnce(func() error {
			c, err := core.CompilePHR(typ, names2)
			if err != nil {
				return err
			}
			typStates = c.MaxComponentStates()
			return nil
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			advTime.Round(time.Microsecond).String(), fmt.Sprint(advStates),
			typTime.Round(time.Microsecond).String(), fmt.Sprint(typStates),
		})
	}
	t.Notes = append(t.Notes,
		"adversarial side condition: (a|b)* b (a|b)^{k-1} — side-automaton states double with k",
		"typical family: k-step label chain — states stay flat")
	return t, nil
}

func timeFnOnce(fn func() error) time.Duration {
	start := time.Now()
	if err := fn(); err != nil {
		return 0
	}
	return time.Since(start)
}

// E4 — naive definitional evaluation (per-node decomposition, §5) vs
// Algorithm 1: the two-pass evaluator is linear, the naive one super-linear,
// so the gap widens with document size.
func E4(quick bool) (*Table, error) {
	names := NewDocEnv()
	phr := core.MustParsePHR(SiblingQuery)
	compiled, err := core.CompilePHR(phr, names)
	if err != nil {
		return nil, err
	}
	naive, err := core.NewNaiveMatcher(phr, names)
	if err != nil {
		return nil, err
	}
	sizes := []int{300, 1000, 3000}
	if !quick {
		sizes = append(sizes, 10000)
	}
	t := &Table{
		ID:     "E4",
		Title:  "Algorithm 1 vs naive per-node envelope matching",
		Claim:  "§7: two traversals make bulk location linear; the definitional method is quadratic-ish",
		Header: []string{"nodes", "alg1 time", "naive time", "speedup"},
	}
	for _, n := range sizes {
		doc := gen.Document(gen.DefaultDocConfig(), n)
		fast := timeIt(func() { compiled.Locate(doc) })
		slowStart := time.Now()
		if _, err := naive.LocateAll(doc); err != nil {
			return nil, err
		}
		slow := time.Since(slowStart)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(doc.Size()),
			fast.Round(time.Microsecond).String(),
			slow.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(slow)/float64(fast)),
		})
	}
	t.Notes = append(t.Notes, "speedup grows with size ⇒ the naive method is super-linear, Algorithm 1 is not")
	return t, nil
}

// E5 — baselines: the PHR engine against the XPath-subset engine on
// queries expressible in both, and against classical path expressions on
// vertical-only queries; plus a query outside the XPath fragment.
func E5(quick bool) (*Table, error) {
	names := NewDocEnv()
	n := 100000
	if quick {
		n = 30000
	}
	doc := gen.Document(gen.DefaultDocConfig(), n)
	xdoc := xpath.NewDoc(doc)

	t := &Table{
		ID:     "E5",
		Title:  "Extended path expressions vs XPath subset vs classical path expressions",
		Claim:  "§1/§2: sibling queries are expressible in both PHR and XPath; a* -style queries only as PHRs",
		Header: []string{"query", "engine", "located", "time/doc"},
	}
	addRow := func(q, eng string, located int, d time.Duration) {
		t.Rows = append(t.Rows, []string{q, eng, fmt.Sprint(located), d.Round(time.Microsecond).String()})
	}

	// Vertical query: three engines.
	cq, err := CompileQuery(names, PathQuery)
	if err != nil {
		return nil, err
	}
	var cnt int
	d := timeIt(func() { cnt = len(cq.Select(doc).Paths) })
	addRow("figures under sections", "phr", cnt, d)

	pe := pathexpr.MustParse("doc, section*, figure").Compile()
	d = timeIt(func() { cnt = len(pe.Locate(doc)) })
	addRow("figures under sections", "pathexpr", cnt, d)

	xp := xpath.MustParse("/doc//figure")
	d = timeIt(func() { cnt = len(xp.Select(xdoc)) })
	addRow("figures under sections", "xpath", cnt, d)

	// Sibling query: PHR, XPath, and caterpillar expressions.
	cq2, err := CompileQuery(names, SiblingQuery)
	if err != nil {
		return nil, err
	}
	d = timeIt(func() { cnt = len(cq2.Select(doc).Paths) })
	addRow("figure then table", "phr", cnt, d)

	xp2 := xpath.MustParse("//figure[following-sibling::*[1][self::table]]")
	d = timeIt(func() { cnt = len(xp2.Select(xdoc)) })
	addRow("figure then table", "xpath", cnt, d)

	cat := caterpillar.MustParse("figure right table")
	cdoc := caterpillar.NewDoc(doc)
	d = timeIt(func() { cnt = len(cat.Select(cdoc)) })
	addRow("figure then table", "caterpillar", cnt, d)

	// Beyond the XPath fragment: every ancestor is a section.
	cq3, err := CompileQuery(names, "figure section*")
	if err != nil {
		return nil, err
	}
	d = timeIt(func() { cnt = len(cq3.Select(doc).Paths) })
	addRow("all ancestors are sections", "phr", cnt, d)
	t.Notes = append(t.Notes,
		"counts must agree between engines on shared queries",
		"the last query has no equivalent in the implemented XPath fragment (nor in XPath 1.0's path core; §2)")
	return t, nil
}

// E6 — Section 8: schema transformation cost and output sizes across
// input-schema sizes.
func E6(quick bool) (*Table, error) {
	depths := []int{1, 2, 3, 4}
	if quick {
		depths = []int{1, 2, 3}
	}
	t := &Table{
		ID:     "E6",
		Title:  "Schema transformation (select and delete output schemas)",
		Claim:  "§8: output schemas are computable via match-identifying automata",
		Header: []string{"grammar classes", "in-states", "select time", "sel-out states", "(reduced)", "delete time", "del-out states", "(reduced)"},
	}
	for _, k := range depths {
		names := ha.NewNames()
		s, err := schema.ParseGrammar(LayeredGrammar(k), names)
		if err != nil {
			return nil, err
		}
		// Locate figures under any chain of the grammar's section layers.
		layers := make([]string, 0, k+1)
		for i := 1; i <= k; i++ {
			layers = append(layers, fmt.Sprintf("section%d", i))
		}
		layers = append(layers, "doc")
		cq, err := CompileQuery(names, fmt.Sprintf("figure (%s)*", strings.Join(layers, "|")))
		if err != nil {
			return nil, err
		}
		var selStates, selReduced int
		selTime := timeFnOnce(func() error {
			out, err := schema.TransformSelect(s, cq, schema.Subtrees)
			if err != nil {
				return err
			}
			selStates = out.DHA.NumStates
			selReduced = schema.Reduced(out).DHA.NumStates
			return nil
		})
		var delStates, delReduced int
		delTime := timeFnOnce(func() error {
			out, err := schema.TransformDelete(s, cq)
			if err != nil {
				return err
			}
			delStates = out.DHA.NumStates
			delReduced = schema.Reduced(out).DHA.NumStates
			return nil
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k + 3),
			fmt.Sprint(s.DHA.NumStates),
			selTime.Round(time.Millisecond).String(), fmt.Sprint(selStates), fmt.Sprint(selReduced),
			delTime.Round(time.Millisecond).String(), fmt.Sprint(delStates), fmt.Sprint(delReduced),
		})
	}
	return t, nil
}

// LayeredGrammar builds a grammar with k section layers: doc over
// section1 … sectionk chains with figures and paragraphs at each level.
func LayeredGrammar(k int) string {
	var b strings.Builder
	b.WriteString("start = doc\n")
	b.WriteString("element doc { (section1 | para)* }\n")
	for i := 1; i <= k; i++ {
		if i < k {
			fmt.Fprintf(&b, "element section%d { (section%d | figure | para)* }\n", i, i+1)
		} else {
			fmt.Fprintf(&b, "element section%d { (figure | para)* }\n", i)
		}
	}
	b.WriteString("element figure { empty }\n")
	b.WriteString("element para { text* }\n")
	return b.String()
}

// E7 — Theorem 1: hedge-automaton determinization on the adversarial
// horizontal family (state blowup) vs the document grammar (flat).
func E7(quick bool) (*Table, error) {
	ks := []int{2, 4, 6, 8, 10}
	if quick {
		ks = []int{2, 4, 6, 8}
	}
	t := &Table{
		ID:     "E7",
		Title:  "Hedge automaton determinization (Theorem 1)",
		Claim:  "§3/§6: subset construction; exponential on adversarial horizontal languages",
		Header: []string{"k", "NHA states", "det time", "DHA states", "max horiz DFA states"},
	}
	for _, k := range ks {
		names := ha.NewNames()
		e := hre.MustParse(advSiblingHRE(k))
		nha, err := hre.Compile(e, names)
		if err != nil {
			return nil, err
		}
		var det *ha.Det
		d := timeFnOnce(func() error {
			det = nha.Determinize()
			return nil
		})
		maxHoriz := 0
		for _, hz := range det.DHA.Horiz {
			if hz != nil && hz.DFA.NumStates > maxHoriz {
				maxHoriz = hz.DFA.NumStates
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(nha.NumStates),
			d.Round(time.Microsecond).String(),
			fmt.Sprint(det.DHA.NumStates), fmt.Sprint(maxHoriz),
		})
	}
	t.Notes = append(t.Notes, "horizontal DFA states grow ~2^k on the k-th-from-end child language")
	return t, nil
}

// advSiblingHRE wraps the adversarial child-sequence language in a root
// element: r⟨(a|b)* b (a|b)^{k-1}⟩.
func advSiblingHRE(k int) string {
	var b strings.Builder
	b.WriteString("r<(a | b)* b")
	for i := 1; i < k; i++ {
		b.WriteString(" (a | b)")
	}
	b.WriteString(">")
	return b.String()
}

// E8 — Figures 1–2: pointed-hedge algebra throughput (product and
// decomposition round-trips).
func E8(quick bool) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Pointed-hedge algebra (product ⊕ and unique decomposition)",
		Claim:  "Figures 1–2: ⊕ is associative; decomposition is unique and inverts ⊕",
		Header: []string{"pointed size", "product time", "decompose time", "bases"},
	}
	sizes := []int{10, 100, 1000}
	if !quick {
		sizes = append(sizes, 10000)
	}
	for _, n := range sizes {
		u := deepPointed(n)
		v := deepPointed(n)
		var prod hedge.Hedge
		pd := timeIt(func() {
			var err error
			prod, err = hedge.Product(u, v)
			if err != nil {
				panic(err)
			}
		})
		var bases int
		dd := timeIt(func() {
			bs, err := hedge.Decompose(prod)
			if err != nil {
				panic(err)
			}
			bases = len(bs)
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(prod.Size()),
			pd.Round(time.Microsecond).String(),
			dd.Round(time.Microsecond).String(),
			fmt.Sprint(bases),
		})
	}
	return t, nil
}

// deepPointed builds a pointed hedge of depth ~n: a chain a⟨a⟨…⟨η⟩…⟩⟩.
func deepPointed(n int) hedge.Hedge {
	cur := hedge.NewEta()
	for i := 0; i < n; i++ {
		cur = hedge.NewElem("a", cur)
	}
	return hedge.Hedge{cur}
}

// All runs every experiment.
func All(quick bool) ([]*Table, error) {
	fns := []func(bool) (*Table, error){E1, E2, E3, E4, E5, E6, E7, E8}
	var out []*Table
	for _, fn := range fns {
		t, err := fn(quick)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
