package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"xpe/internal/core"
	"xpe/internal/gen"
	"xpe/internal/stream"
	"xpe/internal/xmlhedge"
)

// streamFeed is one serialized streaming workload the baseline gate
// replays: the input bytes, the node count behind the throughput figure,
// and the pipeline configuration the recorded run used.
type streamFeed struct {
	data  []byte
	nodes int64
	cfg   stream.Config
	// queries, when set, makes this a multi-query workload: one shared
	// RunMulti pass, or — with independent — one full Run pass per query,
	// the N-scans shape the shared pass is benched against. cq is ignored.
	queries     []*core.CompiledQuery
	independent bool
}

func (f *streamFeed) measure(cq *core.CompiledQuery, name string, minTime time.Duration) BenchResult {
	op := func() {
		_, err := stream.Run(context.Background(), bytes.NewReader(f.data), cq, f.cfg,
			func(*stream.Result) error { return nil })
		if err != nil && err != io.EOF {
			panic(err)
		}
	}
	switch {
	case f.independent:
		op = func() {
			for _, q := range f.queries {
				_, err := stream.Run(context.Background(), bytes.NewReader(f.data), q, f.cfg,
					func(*stream.Result) error { return nil })
				if err != nil && err != io.EOF {
					panic(err)
				}
			}
		}
	case len(f.queries) > 0:
		op = func() {
			_, err := stream.RunMulti(context.Background(), bytes.NewReader(f.data), f.queries, f.cfg,
				func(*stream.Result) error { return nil })
			if err != nil && err != io.EOF {
				panic(err)
			}
		}
	}
	return Measure(name, f.nodes, minTime, op)
}

// plainFeed rebuilds the stream-<size>-w<N> workload: one generated
// document of the recorded size, streamed with the recorded worker count.
func plainFeed(size, workers int) (*streamFeed, error) {
	doc := gen.Document(gen.DefaultDocConfig(), size)
	s, err := xmlhedge.ToString(doc)
	if err != nil {
		return nil, err
	}
	return &streamFeed{
		data:  []byte(s),
		nodes: int64(doc.Size()),
		cfg:   stream.Config{Workers: workers},
	}, nil
}

// degradedFeed rebuilds the stream-degraded-{clean,1pct} corpus with the
// same record counts, sizes, seeds, and poison placement BenchJSON uses,
// keyed off the baseline's quick flag.
func degradedFeed(quick, poisoned bool) (*streamFeed, error) {
	recCount, recSize := 100, 1000
	if quick {
		recCount, recSize = 50, 400
	}
	var b bytes.Buffer
	var nodes int64
	const poison = "<doc><section><figure></table></section></doc>"
	poisonEvery := recCount / max(1, recCount/100)
	b.WriteString("<corpus>")
	for i := 0; i < recCount; i++ {
		cfg := gen.DefaultDocConfig()
		cfg.Seed = int64(i + 1)
		d := gen.Document(cfg, recSize)
		nodes += int64(d.Size())
		if poisoned && i%poisonEvery == poisonEvery/2 {
			b.WriteString(poison)
			continue
		}
		s, err := xmlhedge.ToString(d)
		if err != nil {
			return nil, err
		}
		b.WriteString(s)
	}
	b.WriteString("</corpus>")
	return &streamFeed{
		data:  b.Bytes(),
		nodes: nodes,
		cfg: stream.Config{
			Split:         "doc",
			Workers:       4,
			OnRecordError: func(*stream.RecordError) error { return nil },
		},
	}, nil
}

// prefilterFeed rebuilds the stream-prefilter-{off,on} workload: a
// low-selectivity corpus where only every 16th record contains the query's
// required labels (a generated document with sections); the rest are
// text-heavy paragraph records the raw-byte skim rejects without parsing.
// Both configurations deliver identical matches — only the throughput and
// the skip count differ.
func prefilterFeed(quick, prefilter bool) (*streamFeed, error) {
	recCount, docSize, paras := 256, 300, 24
	if quick {
		recCount, docSize, paras = 64, 200, 12
	}
	var b bytes.Buffer
	b.WriteString("<corpus>")
	for i := 0; i < recCount; i++ {
		if i%32 == 0 {
			cfg := gen.DefaultDocConfig()
			cfg.Seed = int64(i + 1)
			s, err := xmlhedge.ToString(gen.Document(cfg, docSize))
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
			continue
		}
		b.WriteString("<doc>")
		for j := 0; j < paras; j++ {
			fmt.Fprintf(&b, "<para>record %d paragraph %d: plain prose with no matching structure, "+
				"just enough text that skimming beats parsing &amp; node building.</para>", i, j)
		}
		b.WriteString("</doc>")
	}
	b.WriteString("</corpus>")
	h, err := xmlhedge.ParseString(b.String(), xmlhedge.Options{})
	if err != nil {
		return nil, err
	}
	cfg := stream.Config{Workers: 1}
	if !prefilter {
		cfg.Prefilter = stream.PrefilterOff
	}
	// Throughput is nodes of the logical input per second: the prefiltered
	// run answers for the same records whether or not it parses them.
	return &streamFeed{data: b.Bytes(), nodes: int64(h.Size()) - 1, cfg: cfg}, nil
}

// sharedPassQueries is the fan-out of the shared-pass serving workload:
// one registered query per topic label.
const sharedPassQueries = 8

// sharedPassFeed rebuilds the stream-sharedpass-{8q,independent} workload:
// a selective multi-tenant feed evaluated by 8 queries, each keyed to its
// own topic label. Every 4th record files under one topic (cycling through
// the 8); the rest are plain prose no query is interested in — the feed
// shape serving sees when tenants subscribe to slices of a broader stream.
// The shared pass splits and skims the feed once — the union skim drops
// the prose records wholesale and the per-query hint bits route each kept
// record to the ~1 query whose topic it carries — while the independent
// shape re-splits and re-skims the entire feed once per query. Both
// deliver identical matches per query; the ratio is what one pass over N
// registered queries saves against N passes.
func sharedPassFeed(quick, independent bool) (*streamFeed, error) {
	recCount, paras := 1024, 24
	if quick {
		recCount, paras = 192, 12
	}
	names := NewDocEnv()
	queries := make([]*core.CompiledQuery, sharedPassQueries)
	for i := range queries {
		names.Syms.Intern(fmt.Sprintf("topic%d", i))
		cq, err := CompileQuery(names, fmt.Sprintf("figure topic%d doc*", i))
		if err != nil {
			return nil, err
		}
		queries[i] = cq
	}
	var b bytes.Buffer
	b.WriteString("<corpus>")
	for i := 0; i < recCount; i++ {
		b.WriteString("<doc>")
		if i%4 == 0 {
			topic := (i / 4) % sharedPassQueries
			fmt.Fprintf(&b, "<topic%d><figure/><table/></topic%d>", topic, topic)
		}
		for j := 0; j < paras; j++ {
			fmt.Fprintf(&b, "<para>record %d paragraph %d: plain prose no registered query selects.</para>", i, j)
		}
		b.WriteString("</doc>")
	}
	b.WriteString("</corpus>")
	h, err := xmlhedge.ParseString(b.String(), xmlhedge.Options{})
	if err != nil {
		return nil, err
	}
	return &streamFeed{
		data:        b.Bytes(),
		nodes:       int64(h.Size()) - 1,
		cfg:         stream.Config{Workers: 1},
		queries:     queries,
		independent: independent,
	}, nil
}

// parseStreamName recovers (size, workers) from a "stream-<size>-w<N>"
// bench name, undoing sizeName's compaction ("100k" → 100000).
func parseStreamName(name string) (size, workers int, ok bool) {
	parts := strings.Split(name, "-")
	if len(parts) != 3 || parts[0] != "stream" || !strings.HasPrefix(parts[2], "w") {
		return 0, 0, false
	}
	sz := parts[1]
	mult := 1
	if strings.HasSuffix(sz, "k") {
		sz, mult = strings.TrimSuffix(sz, "k"), 1000
	}
	n, err := strconv.Atoi(sz)
	if err != nil {
		return 0, 0, false
	}
	w, err := strconv.Atoi(parts[2][1:])
	if err != nil || w < 1 {
		return 0, 0, false
	}
	return n * mult, w, true
}

// GateStreamBaseline re-measures every stream-* workload recorded in base
// and returns an error naming the regressions when any re-measured
// nodes/sec falls more than maxDropPct percent below the recorded figure.
// Each workload is measured retries times and the best run is compared:
// the baseline itself records best-window figures, and for a lower-bound
// gate the best run is the noise-robust estimate — a genuine regression
// slows every run, a scheduler stall or GC pause only some. Workloads the
// gate cannot reconstruct from their name are reported through logf and
// skipped — never silently.
func GateStreamBaseline(base *BenchReport, maxDropPct float64, retries int, logf func(format string, a ...any)) error {
	if retries < 1 {
		retries = 1
	}
	names := NewDocEnv()
	cq, err := CompileQuery(names, SelectQuery)
	if err != nil {
		return err
	}
	const minTime = 100 * time.Millisecond
	// The plain feeds for one size are shared across worker counts; the
	// config is stamped per bench.
	feeds := map[int]*streamFeed{}
	var failures []string
	gated := 0
	for _, res := range base.Results {
		if !strings.HasPrefix(res.Name, "stream-") {
			continue
		}
		if res.NodesPerSec <= 0 {
			logf("xpebench: %s has no recorded nodes/sec; not gated\n", res.Name)
			continue
		}
		var feed *streamFeed
		if strings.HasPrefix(res.Name, "stream-degraded-") {
			feed, err = degradedFeed(base.Quick, strings.HasSuffix(res.Name, "-1pct"))
			if err != nil {
				return err
			}
		} else if strings.HasPrefix(res.Name, "stream-prefilter-") {
			feed, err = prefilterFeed(base.Quick, strings.HasSuffix(res.Name, "-on"))
			if err != nil {
				return err
			}
		} else if strings.HasPrefix(res.Name, "stream-sharedpass-") {
			feed, err = sharedPassFeed(base.Quick, strings.HasSuffix(res.Name, "-independent"))
			if err != nil {
				return err
			}
		} else {
			size, workers, ok := parseStreamName(res.Name)
			if !ok {
				logf("xpebench: cannot reconstruct workload %q from its name; not gated\n", res.Name)
				continue
			}
			shared, ok := feeds[size]
			if !ok {
				if shared, err = plainFeed(size, workers); err != nil {
					return err
				}
				feeds[size] = shared
			}
			f := *shared
			f.cfg = stream.Config{Workers: workers}
			feed = &f
		}
		var got float64
		for i := 0; i < retries; i++ {
			if nps := feed.measure(cq, res.Name, minTime).NodesPerSec; nps > got {
				got = nps
			}
		}
		dropPct := (1 - got/res.NodesPerSec) * 100
		logf("xpebench: %s: %.0f nodes/sec vs baseline %.0f (%+.1f%%)\n",
			res.Name, got, res.NodesPerSec, -dropPct)
		gated++
		if dropPct > maxDropPct {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f nodes/sec is %.1f%% below the recorded %.0f",
				res.Name, got, dropPct, res.NodesPerSec))
		}
	}
	if gated == 0 {
		return fmt.Errorf("baseline has no gateable stream-* benches")
	}
	if len(failures) > 0 {
		return fmt.Errorf("stream throughput regressed more than %.0f%%:\n  %s",
			maxDropPct, strings.Join(failures, "\n  "))
	}
	return nil
}
