package experiments

// Multi-seed statistical bench trajectory: a throughput figure measured
// at one RNG seed is a point estimate, and gating on it confuses corpus
// luck with performance. Each trajectory entry instead measures every
// workload at several generator seeds (the corpus changes, the code does
// not) and records the per-seed figures plus their mean/min/max. Entries
// append to BENCH_history.ndjson — one dated JSON line per run — so the
// repository carries the trajectory, not just the latest number.
//
// The gate (GateHistory) follows the Type-2 experiment discipline: a
// regression must clear an effect-size bar, not just a percentage. The
// current run fails only when all three hold against the pooled recent
// history:
//
//  1. magnitude: the cross-seed mean is more than maxDropPct percent
//     below the historical mean of means;
//  2. effect size: the current mean falls below the slowest per-seed
//     figure history ever recorded in the window — the drop exceeds the
//     measured cross-seed spread, not just the mean;
//  3. directional consistency: every current seed is below the
//     historical mean — all corpora agree on the direction.
//
// A drop that fails any leg is reported through logf as noise and does
// not gate. This trades a little sensitivity for near-zero false alarms,
// which is what keeps a perf gate trusted enough to stay enabled.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"xpe/internal/gen"
	"xpe/internal/stream"
	"xpe/internal/xmlhedge"
)

// DefaultSeeds are the generator seeds a trajectory entry measures at.
var DefaultSeeds = []int64{42, 123, 456}

// historyWindow is how many recent comparable entries GateHistory pools.
const historyWindow = 5

// seedRepeats is how many measurement windows each per-seed figure is
// the best of. The three-leg rule rejects per-seed noise, but transient
// machine load depresses every seed of a run equally — correlated noise
// the directional-consistency leg cannot see — so each seed takes its
// best window, the same discipline as the baseline gate's best-of-five.
const seedRepeats = 3

// SeedRun is one workload's throughput at one generator seed.
type SeedRun struct {
	Seed        int64   `json:"seed"`
	NodesPerSec float64 `json:"nodes_per_sec"`
}

// SeedStat is one workload's cross-seed summary: the per-seed runs and
// their mean/min/max nodes/sec.
type SeedStat struct {
	Name string    `json:"name"`
	Mean float64   `json:"mean_nodes_per_sec"`
	Min  float64   `json:"min_nodes_per_sec"`
	Max  float64   `json:"max_nodes_per_sec"`
	Runs []SeedRun `json:"runs"`
}

// HistoryEntry is one BENCH_history.ndjson line: a dated multi-seed
// measurement of the trajectory workloads.
type HistoryEntry struct {
	Date      string     `json:"date"` // YYYY-MM-DD (UTC)
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	Quick     bool       `json:"quick"`
	Workloads []SeedStat `json:"workloads"`
}

// trajectoryWorkloads are the (name, workers) pairs each entry measures;
// the document size comes from quick.
var trajectoryWorkloads = []struct {
	suffix  string
	workers int
}{
	{"w1", 1},
	{"w4", 4},
}

// MeasureStreamSeeds measures the trajectory workloads at every seed
// (each figure the best of seedRepeats windows) and returns the
// cross-seed stats. Workload names carry the size ("stream-100k-w4"),
// so quick and full entries never compare.
func MeasureStreamSeeds(quick bool, seeds []int64, logf func(format string, a ...any)) ([]SeedStat, error) {
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	size, minTime := 100_000, 200*time.Millisecond
	if quick {
		size, minTime = 20_000, 40*time.Millisecond
	}
	names := NewDocEnv()
	cq, err := CompileQuery(names, SelectQuery)
	if err != nil {
		return nil, err
	}
	var out []SeedStat
	for _, w := range trajectoryWorkloads {
		name := fmt.Sprintf("stream-%s-%s", sizeName(size), w.suffix)
		st := SeedStat{Name: name}
		for i, seed := range seeds {
			feed, err := seededFeed(size, w.workers, seed)
			if err != nil {
				return nil, err
			}
			var nps float64
			for r := 0; r < seedRepeats; r++ {
				if got := feed.measure(cq, name, minTime).NodesPerSec; got > nps {
					nps = got
				}
			}
			st.Runs = append(st.Runs, SeedRun{Seed: seed, NodesPerSec: nps})
			st.Mean += nps
			if i == 0 || nps < st.Min {
				st.Min = nps
			}
			if nps > st.Max {
				st.Max = nps
			}
			logf("xpebench: %s seed %d: %.0f nodes/sec\n", name, seed, nps)
		}
		st.Mean /= float64(len(seeds))
		out = append(out, st)
	}
	return out, nil
}

// seededFeed is plainFeed at a chosen generator seed.
func seededFeed(size, workers int, seed int64) (*streamFeed, error) {
	cfg := gen.DefaultDocConfig()
	cfg.Seed = seed
	doc := gen.Document(cfg, size)
	s, err := xmlhedge.ToString(doc)
	if err != nil {
		return nil, err
	}
	return &streamFeed{
		data:  []byte(s),
		nodes: int64(doc.Size()),
		cfg:   stream.Config{Workers: workers},
	}, nil
}

// AppendHistory appends one entry to the NDJSON trajectory file,
// creating it if needed.
func AppendHistory(path string, e HistoryEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadHistory reads a trajectory file. A missing file is an empty
// trajectory, not an error — the first recorded run has no past.
func LoadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("%s: bad trajectory line %q: %w", path, line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// GateHistory judges cur against the pooled recent history (the last
// historyWindow comparable entries) per workload, under the three-leg
// rule in the package comment. Workloads with no comparable history are
// reported through logf and pass; an empty history passes wholesale.
func GateHistory(hist []HistoryEntry, cur HistoryEntry, maxDropPct float64, logf func(format string, a ...any)) error {
	// Pool the recent comparable entries' stats by workload name.
	type pool struct {
		meanSum  float64 // sum of entry means
		nMeans   int
		worstRun float64 // slowest per-seed figure in the window
	}
	pools := map[string]*pool{}
	comparable := 0
	for i := len(hist) - 1; i >= 0 && comparable < historyWindow; i-- {
		e := hist[i]
		if e.Quick != cur.Quick || e.GOOS != cur.GOOS || e.GOARCH != cur.GOARCH {
			continue
		}
		comparable++
		for _, st := range e.Workloads {
			p := pools[st.Name]
			if p == nil {
				p = &pool{worstRun: st.Min}
				pools[st.Name] = p
			}
			p.meanSum += st.Mean
			p.nMeans++
			if st.Min < p.worstRun {
				p.worstRun = st.Min
			}
		}
	}
	if comparable == 0 {
		logf("xpebench: trajectory has no comparable entries (quick=%v %s/%s); nothing to gate\n",
			cur.Quick, cur.GOOS, cur.GOARCH)
		return nil
	}
	var failures []string
	for _, st := range cur.Workloads {
		p := pools[st.Name]
		if p == nil || p.nMeans == 0 {
			logf("xpebench: %s has no trajectory history; not gated\n", st.Name)
			continue
		}
		baseMean := p.meanSum / float64(p.nMeans)
		dropPct := (1 - st.Mean/baseMean) * 100
		logf("xpebench: %s: mean %.0f nodes/sec vs trajectory mean %.0f over %d entries (%+.1f%%)\n",
			st.Name, st.Mean, baseMean, p.nMeans, -dropPct)
		if dropPct <= maxDropPct {
			continue
		}
		if st.Mean >= p.worstRun {
			logf("xpebench: %s: drop within the historical cross-seed spread (slowest recorded run %.0f); treated as noise\n",
				st.Name, p.worstRun)
			continue
		}
		consistent := true
		for _, r := range st.Runs {
			if r.NodesPerSec >= baseMean {
				consistent = false
				break
			}
		}
		if !consistent {
			logf("xpebench: %s: seeds disagree on the direction; treated as noise\n", st.Name)
			continue
		}
		failures = append(failures, fmt.Sprintf(
			"%s: mean %.0f nodes/sec is %.1f%% below the trajectory mean %.0f, below every recorded run, and every seed agrees",
			st.Name, st.Mean, dropPct, baseMean))
	}
	if len(failures) > 0 {
		return fmt.Errorf("stream throughput regressed against the trajectory (max drop %.0f%%):\n  %s",
			maxDropPct, strings.Join(failures, "\n  "))
	}
	return nil
}
