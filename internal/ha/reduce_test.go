package ha

import (
	"math/rand"
	"testing"

	"xpe/internal/hedge"
)

func TestReducePreservesLanguage(t *testing.T) {
	automata := map[string]*DHA{
		"M0":           paperM0(t).Determinize().DHA,
		"M1":           paperM1(t).Determinize().DHA,
		"M0 completed": paperM0(t).Determinize().DHA.Complete().Complete(),
	}
	for name, d := range automata {
		r := d.Reduce()
		eq, err := Equivalent(d, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !eq {
			t.Fatalf("%s: Reduce changed the language", name)
		}
		if r.NumStates > d.NumStates+1 {
			t.Fatalf("%s: Reduce grew the automaton: %d → %d", name, d.NumStates, r.NumStates)
		}
	}
}

func TestReduceMergesRedundantStates(t *testing.T) {
	// A product automaton has many behaviourally equal states: the product
	// of an automaton with itself must reduce back to (roughly) the
	// original size.
	d := paperM0(t).Determinize().DHA
	p, err := Intersect(d, d)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Reduce()
	if r.NumStates >= p.NumStates {
		t.Fatalf("self-product not reduced: %d → %d", p.NumStates, r.NumStates)
	}
	// Sampled language agreement (exact equivalence of the large product is
	// covered for the small automata in TestReducePreservesLanguage).
	rng := rand.New(rand.NewSource(17))
	cfg := hedge.RandConfig{Symbols: []string{"d", "p"}, Vars: []string{"x", "y"}, MaxDepth: 4, MaxWidth: 3}
	for i := 0; i < 300; i++ {
		h := hedge.Random(rng, cfg)
		if p.Accepts(h) != r.Accepts(h) {
			t.Fatalf("reduction broke the self-product on %q", h)
		}
	}
	dc := d.Complete()
	if r.NumStates > dc.NumStates+2 {
		t.Fatalf("self-product should reduce to about the original: %d vs %d",
			r.NumStates, dc.NumStates)
	}
}

func TestReduceRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := hedge.RandConfig{Symbols: []string{"d", "p"}, Vars: []string{"x", "y"}, MaxDepth: 4, MaxWidth: 3}
	d := paperM0(t).Determinize().DHA
	r := d.Reduce()
	for i := 0; i < 300; i++ {
		h := hedge.Random(rng, cfg)
		if d.Accepts(h) != r.Accepts(h) {
			t.Fatalf("reduced automaton disagrees on %q", h)
		}
	}
}
