package ha

import (
	"math/rand"
	"testing"

	"xpe/internal/hedge"
)

func TestNaryProductAgrees(t *testing.T) {
	names := NewNames()
	names.Syms.Intern("a")
	names.Syms.Intern("b")
	names.Vars.Intern("x")

	ba := NewBuilder(names)
	ba.Iota("x", "qx")
	ba.MustRule("a", "qa", "(qa | qb | qx)*")
	ba.MustRule("b", "qb", "(qa | qb | qx)*")
	ba.MustFinal("qa*") // all top-level nodes are a
	a := ba.Build().Determinize().DHA

	bb := NewBuilder(names)
	bb.Iota("x", "px")
	bb.MustRule("a", "pa", "(pa | pb | px)*")
	bb.MustRule("b", "pb", "(pa | pb | px)*")
	bb.MustFinal("(pa | pb | px) (pa | pb | px)") // exactly two top nodes
	b := bb.Build().Determinize().DHA

	bc := NewBuilder(names)
	bc.Iota("x", "rx")
	bc.MustRule("a", "ra", "()")
	bc.MustRule("a", "ri", "(ra | rb | rx)+")
	bc.MustRule("b", "rb", "(ra | rb | rx)*")
	bc.MustFinal("(ra | rb | rx | ri)*")
	c := bc.Build().Determinize().DHA

	p, tuples, err := NaryProduct([]*DHA{a, b, c}, func(acc []bool) bool {
		return acc[0] && !acc[1] || acc[2]
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuples.Len() != p.NumStates {
		t.Fatalf("tuple count %d != product states %d", tuples.Len(), p.NumStates)
	}
	rng := rand.New(rand.NewSource(3))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 3, MaxWidth: 3}
	for i := 0; i < 300; i++ {
		h := hedge.Random(rng, cfg)
		want := a.Accepts(h) && !b.Accepts(h) || c.Accepts(h)
		if got := p.Accepts(h); got != want {
			t.Fatalf("product wrong on %v: got %v want %v (a=%v b=%v c=%v)",
				h, got, want, a.Accepts(h), b.Accepts(h), c.Accepts(h))
		}
		// Product states must project to component states.
		run := p.Exec(h)
		ra, rb, rc := a.Complete().Exec(h), b.Complete().Exec(h), c.Complete().Exec(h)
		h.Visit(func(_ hedge.Path, n *hedge.Node) bool {
			tup := tuples.Tuple(run.States[n])
			if tup[0] != ra.States[n] || tup[1] != rb.States[n] || tup[2] != rc.States[n] {
				t.Fatalf("projection mismatch at %v in %v", n, h)
			}
			return true
		})
	}
}

func TestMarkChildren(t *testing.T) {
	// d: language "all children sequences matching (b|x)*" rooted anywhere —
	// use the paper's Theorem 3 example e = (b|x)*: mark nodes whose
	// subhedge consists of b-leaves and x variables.
	names := NewNames()
	names.Syms.Intern("a")
	names.Syms.Intern("b")
	names.Vars.Intern("x")
	bd := NewBuilder(names)
	bd.Iota("x", "qx")
	bd.MustRule("b", "qb", "()")
	bd.MustRule("a", "qa", "(qa | qb | qx)*") // a nodes allowed inside, any children
	bd.MustRule("b", "qa", "(qa | qb | qx)+") // b with children is not a "plain b"
	bd.MustFinal("(qb | qx)*")
	d := bd.Build().Determinize().DHA

	m, marked := MarkChildren(d)
	// ba⟨a⟨bx⟩b⟩ from Section 6: only the inner a (children bx) is marked.
	h := hedge.MustParse("b a<a<b $x> b>")
	run := m.Exec(h)
	if !run.Complete {
		t.Fatal("marking automaton must assign states everywhere")
	}
	wantMarked := map[string]bool{}
	inner := h[1].Children[0] // a⟨bx⟩
	wantMarked[inner.Name] = true
	h.Visit(func(p hedge.Path, n *hedge.Node) bool {
		isMarked := marked[run.States[n]]
		want := n == inner || (n.Kind == hedge.Elem && dAccepts(d, n))
		if isMarked != want {
			t.Fatalf("node %v at %v: marked=%v want=%v", n.Name, p, isMarked, want)
		}
		return true
	})
}

// dAccepts reports whether the node's subhedge is accepted by d.
func dAccepts(d *DHA, n *hedge.Node) bool {
	if n.Kind != hedge.Elem {
		return false
	}
	return d.Accepts(n.Children)
}

func TestMarkChildrenRandomAgreement(t *testing.T) {
	names := NewNames()
	names.Syms.Intern("a")
	names.Syms.Intern("b")
	names.Vars.Intern("x")
	bd := NewBuilder(names)
	bd.Iota("x", "qx")
	bd.MustRule("b", "qb", "()")
	bd.MustRule("a", "qa", "(qb | qx)*")
	bd.MustFinal("qa qa*")
	d := bd.Build().Determinize().DHA
	m, marked := MarkChildren(d)

	rng := rand.New(rand.NewSource(5))
	cfg := hedge.RandConfig{Symbols: []string{"a", "b"}, Vars: []string{"x"}, MaxDepth: 4, MaxWidth: 3}
	for i := 0; i < 200; i++ {
		h := hedge.Random(rng, cfg)
		run := m.Exec(h)
		h.Visit(func(p hedge.Path, n *hedge.Node) bool {
			if n.Kind != hedge.Elem {
				if marked[run.States[n]] {
					t.Fatalf("leaf marked at %v in %v", p, h)
				}
				return true
			}
			want := d.Accepts(n.Children)
			if got := marked[run.States[n]]; got != want {
				t.Fatalf("mark mismatch at %v in %v: got %v want %v", p, h, got, want)
			}
			return true
		})
	}
}
