package ha

import (
	"math/rand"

	"xpe/internal/alphabet"
	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// Sampler draws random hedges from the language of a DHA. It is used to
// sample documents from schemas in tests and benchmarks.
type Sampler struct {
	d       *DHA
	rng     *rand.Rand
	witness []*hedge.Node // minimal-ish witness tree per state (nil = uninhabited)
	// realizations[q] = (symbol, horizontal-DFA accepting state) options
	// that produce q.
	realizations [][]realization
}

type realization struct {
	sym    int
	target int // horizontal DFA state with Out == q
}

// NewSampler prepares a sampler; ok is false when the language is empty.
func NewSampler(d *DHA, rng *rand.Rand) (*Sampler, bool) {
	s := &Sampler{d: d, rng: rng}
	s.witness = make([]*hedge.Node, d.NumStates)
	for v, q := range d.Iota {
		if q != alphabet.None && s.witness[q] == nil {
			s.witness[q] = hedge.NewVar(d.Names.Vars.Name(v))
		}
	}
	for changed := true; changed; {
		changed = false
		for sym, hz := range d.Horiz {
			if hz == nil {
				continue
			}
			for hs, q := range hz.Out {
				if q == alphabet.None || s.witness[q] != nil {
					continue
				}
				word, ok := someWordOver(hz.DFA, hs, s.witness)
				if !ok {
					continue
				}
				children := make(hedge.Hedge, len(word))
				for i, cq := range word {
					children[i] = s.witness[cq].Clone()
				}
				s.witness[q] = hedge.NewElem(d.Names.Syms.Name(sym), children...)
				changed = true
			}
		}
	}
	s.realizations = make([][]realization, d.NumStates)
	for sym, hz := range d.Horiz {
		if hz == nil {
			continue
		}
		reachable := s.reachableHoriz(hz)
		for hs, q := range hz.Out {
			if q == alphabet.None || !reachable[hs] {
				continue
			}
			s.realizations[q] = append(s.realizations[q], realization{sym, hs})
		}
	}
	// Check non-emptiness.
	if _, ok := s.sampleTop(1); !ok {
		return nil, false
	}
	return s, true
}

// reachableHoriz marks horizontal states reachable over inhabited symbols.
func (s *Sampler) reachableHoriz(hz *Horiz) []bool {
	seen := make([]bool, hz.DFA.NumStates)
	if hz.DFA.Start == sfa.Dead {
		return seen
	}
	stack := []int{hz.DFA.Start}
	seen[hz.DFA.Start] = true
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for q, to := range hz.DFA.Trans[h] {
			if to == sfa.Dead || q >= len(s.witness) || s.witness[q] == nil || seen[to] {
				continue
			}
			seen[to] = true
			stack = append(stack, to)
		}
	}
	return seen
}

// Sample draws a random member. depthBudget bounds recursive realization
// (witness trees are used below the budget); widthBias ∈ (0,1) controls how
// eagerly random walks stop (smaller = wider hedges). ok is false when the
// language is empty.
func (s *Sampler) Sample(depthBudget int) (hedge.Hedge, bool) {
	top, ok := s.sampleTop(40)
	if !ok {
		return nil, false
	}
	out := make(hedge.Hedge, len(top))
	for i, q := range top {
		out[i] = s.realize(q, depthBudget)
	}
	return out, true
}

// sampleTop picks a random accepted word over inhabited states from the
// final DFA.
func (s *Sampler) sampleTop(maxLen int) ([]int, bool) {
	return s.randomWord(s.d.Final, func(st int) bool { return s.d.Final.Accepting(st) }, maxLen)
}

// randomWord walks the DFA over inhabited symbols, restricted to states
// from which acceptance stays reachable, stopping at accepting states with
// increasing probability.
func (s *Sampler) randomWord(dfa *sfa.DFA, accepting func(int) bool, maxLen int) ([]int, bool) {
	co := s.coReachable(dfa, accepting)
	if dfa.Start == sfa.Dead || !co[dfa.Start] {
		return nil, false
	}
	var word []int
	st := dfa.Start
	for steps := 0; ; steps++ {
		if accepting(st) && (steps >= maxLen || s.rng.Intn(3) == 0) {
			return word, true
		}
		// Candidate inhabited moves that keep acceptance reachable.
		var moves []int
		for q, to := range dfa.Trans[st] {
			if to != sfa.Dead && co[to] && q < len(s.witness) && s.witness[q] != nil {
				moves = append(moves, q)
			}
		}
		if len(moves) == 0 {
			return word, accepting(st)
		}
		if steps >= maxLen {
			rest, ok := s.completeWord(dfa, st, accepting)
			if !ok {
				return word, accepting(st)
			}
			return append(word, rest...), true
		}
		q := moves[s.rng.Intn(len(moves))]
		word = append(word, q)
		st = dfa.Trans[st][q]
	}
}

// coReachable marks states from which an accepting state is reachable over
// inhabited symbols.
func (s *Sampler) coReachable(dfa *sfa.DFA, accepting func(int) bool) []bool {
	// Reverse adjacency restricted to inhabited symbols.
	radj := make([][]int, dfa.NumStates)
	for st := 0; st < dfa.NumStates; st++ {
		for q, to := range dfa.Trans[st] {
			if to != sfa.Dead && q < len(s.witness) && s.witness[q] != nil {
				radj[to] = append(radj[to], st)
			}
		}
	}
	co := make([]bool, dfa.NumStates)
	var stack []int
	for st := 0; st < dfa.NumStates; st++ {
		if accepting(st) {
			co[st] = true
			stack = append(stack, st)
		}
	}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, from := range radj[st] {
			if !co[from] {
				co[from] = true
				stack = append(stack, from)
			}
		}
	}
	return co
}

// completeWord finds a shortest inhabited-symbol path from st to an
// accepting state.
func (s *Sampler) completeWord(dfa *sfa.DFA, st int, accepting func(int) bool) ([]int, bool) {
	type pred struct{ state, sym int }
	prev := map[int]pred{}
	seen := map[int]bool{st: true}
	queue := []int{st}
	goal := -1
	for len(queue) > 0 && goal < 0 {
		cur := queue[0]
		queue = queue[1:]
		if accepting(cur) {
			goal = cur
			break
		}
		for q, to := range dfa.Trans[cur] {
			if to == sfa.Dead || q >= len(s.witness) || s.witness[q] == nil || seen[to] {
				continue
			}
			seen[to] = true
			prev[to] = pred{cur, q}
			queue = append(queue, to)
		}
	}
	if goal < 0 {
		return nil, false
	}
	var rev []int
	for cur := goal; cur != st; {
		p := prev[cur]
		rev = append(rev, p.sym)
		cur = p.state
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// realize builds a random tree reaching state q.
func (s *Sampler) realize(q, depthBudget int) *hedge.Node {
	if depthBudget <= 0 || len(s.realizations[q]) == 0 {
		return s.witness[q].Clone()
	}
	// Prefer a leaf realization occasionally if the state is a ι image.
	if s.witness[q] != nil && s.witness[q].Kind == hedge.Var && s.rng.Intn(2) == 0 {
		return s.witness[q].Clone()
	}
	r := s.realizations[q][s.rng.Intn(len(s.realizations[q]))]
	hz := s.d.Horiz[r.sym]
	word, ok := s.randomWord(hz.DFA, func(st int) bool { return st == r.target }, 20)
	if !ok {
		return s.witness[q].Clone()
	}
	children := make(hedge.Hedge, len(word))
	for i, cq := range word {
		children[i] = s.realize(cq, depthBudget-1)
	}
	return hedge.NewElem(s.d.Names.Syms.Name(r.sym), children...)
}
