package ha

// Substitution-symbol support (Section 4 of the paper). The Lemma 1 proof
// "allows substitution symbols as variables of hedge automata": each z ∈ Z
// gets a dedicated leaf state z̄. We realize this by tracking substitution
// symbols in the Vars interner under a reserved, unparseable name, so the
// ordinary ι machinery applies to them.

// SubstVarName returns the reserved variable name under which substitution
// symbol z is tracked in Names.Vars. The NUL prefix keeps it disjoint from
// every parseable variable name.
func SubstVarName(z string) string { return "\x00subst:" + z }
