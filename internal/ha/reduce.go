package ha

import (
	"xpe/internal/alphabet"
	"xpe/internal/sfa"
)

// Reduce merges behaviourally indistinguishable states of a complete(d)
// deterministic hedge automaton — the hedge analogue of DFA minimization by
// partition refinement. Two automaton states fall into one class when no
// horizontal automaton (including the final-sequence automaton) can tell
// them apart; horizontal states are refined jointly, since their outputs
// are automaton states and their alphabets are the automaton's state set.
//
// The computed partition is a congruence, so the quotient accepts exactly
// the same language (tests double-check via Equivalent). It is used to
// shrink the automata produced by the Section 8 schema transformations,
// whose product constructions routinely introduce redundant states.
func (d *DHA) Reduce() *DHA {
	c := d.Complete()
	numQ := c.NumStates

	// Uninhabited states never occur in any computation: they are pinned
	// into one class and excluded from horizontal signatures, so they can
	// never prevent a merge.
	inhabited := c.inhabitedStates()

	// All horizontal structures, final automaton last (with no Out).
	type table struct {
		dfa *sfa.DFA
		out []int // nil for the final automaton
	}
	var tables []table
	for _, hz := range c.Horiz {
		if hz != nil {
			tables = append(tables, table{hz.DFA, hz.Out})
		}
	}
	tables = append(tables, table{c.Final, nil})

	// Q-classes and per-table state classes, refined alternately.
	qClass := make([]int, numQ) // all zero initially
	numQClasses := 1
	tClass := make([][]int, len(tables))
	for i, tb := range tables {
		tClass[i] = make([]int, tb.dfa.NumStates)
	}

	refineTables := func() {
		for i, tb := range tables {
			// Initial base: acceptance (final automaton) or the Q-class of
			// the output state.
			base := make([]int, tb.dfa.NumStates)
			for s := range base {
				if tb.out == nil {
					if tb.dfa.Accept[s] {
						base[s] = 1
					}
				} else {
					base[s] = qClass[tb.out[s]]
				}
			}
			tClass[i] = minimizeWithBase(tb.dfa, base, numQ, inhabited)
		}
	}
	refineQ := func() int {
		sig := alphabet.NewTupleInterner()
		next := make([]int, numQ)
		buf := make([]int, 0, 64)
		uninhabitedClass := -1
		for q := 0; q < numQ; q++ {
			if !inhabited[q] {
				if uninhabitedClass == -1 {
					uninhabitedClass = sig.Intern([]int{-7})
				}
				next[q] = uninhabitedClass
				continue
			}
			buf = buf[:0]
			buf = append(buf, qClass[q])
			for i, tb := range tables {
				for s := 0; s < tb.dfa.NumStates; s++ {
					buf = append(buf, tClass[i][tb.dfa.Step(s, q)])
				}
			}
			next[q] = sig.Intern(buf)
		}
		copy(qClass, next)
		return sig.Len()
	}

	for {
		refineTables()
		n := refineQ()
		if n == numQClasses {
			break
		}
		numQClasses = n
	}

	// Build the quotient.
	out := &DHA{
		Names:     c.Names,
		NumStates: numQClasses,
		Iota:      make([]int, len(c.Iota)),
		Horiz:     make([]*Horiz, len(c.Horiz)),
	}
	for v, q := range c.Iota {
		out.Iota[v] = qClass[q]
	}
	// Class representatives.
	rep := make([]int, numQClasses)
	for i := range rep {
		rep[i] = -1
	}
	for q := numQ - 1; q >= 0; q-- {
		rep[qClass[q]] = q
	}
	ti := 0
	for sym, hz := range c.Horiz {
		if hz == nil {
			continue
		}
		out.Horiz[sym] = quotientHoriz(hz, tClass[ti], qClass, numQClasses, rep)
		ti++
	}
	out.Final = quotientDFA(c.Final, tClass[len(tables)-1], qClass, numQClasses, rep)
	return out
}

// minimizeWithBase partitions the DFA's states by behaviour, starting from
// the given base partition, stepping only on inhabited symbols (words over
// uninhabited states never occur).
func minimizeWithBase(dfa *sfa.DFA, base []int, alpha int, inhabited []bool) []int {
	class := append([]int(nil), base...)
	num := 0
	seen := map[int]bool{}
	for _, c := range class {
		if !seen[c] {
			seen[c] = true
			num++
		}
	}
	for {
		sig := alphabet.NewTupleInterner()
		next := make([]int, len(class))
		buf := make([]int, 0, alpha+1)
		for s := range class {
			buf = buf[:0]
			buf = append(buf, class[s])
			for q := 0; q < alpha; q++ {
				if inhabited[q] {
					buf = append(buf, class[dfa.Step(s, q)])
				}
			}
			next[s] = sig.Intern(buf)
		}
		if sig.Len() == num {
			return next
		}
		num = sig.Len()
		class = next
	}
}

// InhabitedStates reports, per state, whether some hedge reaches it.
func (d *DHA) InhabitedStates() []bool { return d.inhabitedStates() }

// ReachableHorizontal marks the horizontal DFA states reachable over the
// allowed state symbols.
func ReachableHorizontal(hz *Horiz, allowed []bool) []bool {
	return reachableHorizOver(hz.DFA, allowed)
}

// inhabitedStates marks states reachable by some hedge.
func (d *DHA) inhabitedStates() []bool {
	inhabited := make([]bool, d.NumStates)
	for _, q := range d.Iota {
		if q != alphabet.None {
			inhabited[q] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, hz := range d.Horiz {
			if hz == nil {
				continue
			}
			reach := reachableHorizOver(hz.DFA, inhabited)
			for hs, ok := range reach {
				if !ok {
					continue
				}
				q := hz.Out[hs]
				if q != alphabet.None && !inhabited[q] {
					inhabited[q] = true
					changed = true
				}
			}
		}
	}
	return inhabited
}

func reachableHorizOver(dfa *sfa.DFA, allowed []bool) []bool {
	seen := make([]bool, dfa.NumStates)
	if dfa.Start == sfa.Dead {
		return seen
	}
	seen[dfa.Start] = true
	stack := []int{dfa.Start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for q, to := range dfa.Trans[s] {
			if to == sfa.Dead || q >= len(allowed) || !allowed[q] || seen[to] {
				continue
			}
			seen[to] = true
			stack = append(stack, to)
		}
	}
	return seen
}

// quotientHoriz builds the quotient horizontal structure over Q-classes.
func quotientHoriz(hz *Horiz, sClass, qClass []int, numQClasses int, rep []int) *Horiz {
	dfa := quotientDFA(hz.DFA, sClass, qClass, numQClasses, rep)
	// Out per quotient state: via any representative horizontal state.
	out := make([]int, dfa.NumStates)
	srep := make([]int, dfa.NumStates)
	for i := range srep {
		srep[i] = -1
	}
	for s := len(sClass) - 1; s >= 0; s-- {
		srep[sClass[s]] = s
	}
	for sc, s := range srep {
		out[sc] = qClass[hz.Out[s]]
	}
	return &Horiz{DFA: dfa, Out: out}
}

// quotientDFA builds the quotient of a horizontal DFA: states are sClass
// classes, symbols are Q-classes (stepping via representatives, which is
// well defined by congruence stability).
func quotientDFA(dfa *sfa.DFA, sClass, qClass []int, numQClasses int, rep []int) *sfa.DFA {
	numS := 0
	for _, c := range sClass {
		if c+1 > numS {
			numS = c + 1
		}
	}
	out := sfa.NewDFA(numQClasses)
	srep := make([]int, numS)
	for i := range srep {
		srep[i] = -1
	}
	for s := len(sClass) - 1; s >= 0; s-- {
		srep[sClass[s]] = s
	}
	for sc := 0; sc < numS; sc++ {
		out.AddState(dfa.Accept[srep[sc]])
	}
	out.Start = sClass[dfa.Start]
	for sc := 0; sc < numS; sc++ {
		for qc := 0; qc < numQClasses; qc++ {
			out.SetTrans(sc, qc, sClass[dfa.Step(srep[sc], rep[qc])])
		}
	}
	return out
}
