// Package ha implements hedge automata, the tree-automaton substrate of the
// paper (Section 3): deterministic hedge automata (Definitions 3–5),
// non-deterministic hedge automata (Definitions 6–8), bottom-up execution
// M‖u (Definitions 4 and 7), determinization by subset construction
// (Theorem 1), products, boolean operations, emptiness, membership,
// language equivalence, and witness generation.
//
// Automata are defined over interned alphabets: a shared *Names carries the
// interners for the symbol alphabet Σ and the variable set X. The
// horizontal languages α⁻¹(a,q) and the final-state-sequence set F are
// string automata (package sfa) whose alphabet is the state set Q.
package ha

import (
	"fmt"

	"xpe/internal/alphabet"
	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// Names carries the shared interners for Σ (element labels) and X
// (variable labels). Automata combined by products must share the same
// *Names. The interners are individually safe for concurrent use (see
// package alphabet), so a Names may be shared by concurrent parsers and
// evaluators; closed-world compilations record Generation and revalidate
// when it moves.
type Names struct {
	Syms *alphabet.Interner
	Vars *alphabet.Interner
}

// NewNames returns fresh empty interners.
func NewNames() *Names {
	return &Names{Syms: alphabet.NewInterner(), Vars: alphabet.NewInterner()}
}

// Generation is the combined alphabet version: the sum of the symbol and
// variable interner generations. Both summands are monotone, so the sum is
// too, and it advances exactly when either interner assigns a fresh id —
// i.e. whenever the closed-world reading of '.'-sides and schema products
// would change. Reading it is two atomic loads; no lock is taken.
func (n *Names) Generation() uint64 {
	return n.Syms.Generation() + n.Vars.Generation()
}

// Clone returns an independent snapshot of both interners. Closed-world
// compilations build automata against a snapshot so that a concurrent
// Intern into the shared Names cannot resize the alphabet mid-construction;
// ids agree between a snapshot and its origin for every name present in
// both, because interners are append-only.
func (n *Names) Clone() *Names {
	return &Names{Syms: n.Syms.Clone(), Vars: n.Vars.Clone()}
}

// ExtensionOf reports whether n is an append-only extension of base: every
// symbol and variable of base keeps its id in n. True between any two
// snapshots of one growing alphabet, which is what lets an automaton
// compiled against the older snapshot be reinterpreted over the newer one
// (Complete() maps the extension symbols to the sink).
func (n *Names) ExtensionOf(base *Names) bool {
	return n.Syms.Extends(base.Syms) && n.Vars.Extends(base.Vars)
}

// Horiz is the horizontal transition structure of a deterministic hedge
// automaton for one symbol a: a DFA over the state set Q reading the
// child-state sequence, and, per horizontal DFA state, the resulting
// automaton state (alphabet.None when α is undefined there). Together these
// realize α(a, q₁…q_k) with the regularity condition of Definition 3.
type Horiz struct {
	DFA *sfa.DFA
	Out []int // indexed by DFA state; alphabet.None = undefined
}

// DHA is a deterministic hedge automaton (Definition 3). Transitions may be
// partial; hedges that fall off the automaton are rejected (equivalently,
// the automaton can be completed with a sink state via Complete).
type DHA struct {
	Names     *Names
	NumStates int
	Iota      []int    // variable id → state (alphabet.None = undefined)
	Horiz     []*Horiz // symbol id → horizontal structure (nil = undefined)
	Final     *sfa.DFA // DFA over Q accepting the final state sequences
}

// NumSyms returns the number of symbols the automaton knows about.
func (d *DHA) NumSyms() int { return len(d.Horiz) }

// Run is the computation M‖u of a hedge by a DHA (Definition 4): the state
// assigned to every node. States[n] is alphabet.None where α was undefined.
type Run struct {
	States   map[*hedge.Node]int
	Top      []int // ceil of the computation (states of top-level nodes)
	Accepted bool
	Complete bool // false if some node received no state
}

// Exec computes M‖u and acceptance (Definition 5).
func (d *DHA) Exec(h hedge.Hedge) *Run {
	r := &Run{States: make(map[*hedge.Node]int, h.Size())}
	r.Complete = true
	r.Top = d.execHedge(h, r)
	r.Accepted = d.acceptsTop(r.Top)
	return r
}

func (d *DHA) acceptsTop(top []int) bool {
	st := d.Final.Start
	for _, q := range top {
		if q == alphabet.None {
			return false
		}
		st = d.Final.Step(st, q)
	}
	return d.Final.Accepting(st)
}

func (d *DHA) execHedge(h hedge.Hedge, r *Run) []int {
	states := make([]int, len(h))
	for i, n := range h {
		states[i] = d.execNode(n, r)
	}
	return states
}

func (d *DHA) execNode(n *hedge.Node, r *Run) int {
	var q int
	switch n.Kind {
	case hedge.Var:
		q = alphabet.None
		if v := d.Names.Vars.Lookup(n.Name); v != alphabet.None && v < len(d.Iota) {
			q = d.Iota[v]
		}
	case hedge.Elem:
		children := d.execHedge(n.Children, r)
		q = d.applyAlpha(n.Name, children)
	default:
		// Substitution-symbol leaves are tracked as reserved variables
		// (Lemma 1 allows substitution symbols as variables).
		q = alphabet.None
		if v := d.Names.Vars.Lookup(SubstVarName(n.Name)); v != alphabet.None && v < len(d.Iota) {
			q = d.Iota[v]
		}
	}
	if q == alphabet.None {
		r.Complete = false
	}
	r.States[n] = q
	return q
}

// applyAlpha computes α(a, q₁…q_k) for a symbol name and child states.
func (d *DHA) applyAlpha(symName string, children []int) int {
	sym := d.Names.Syms.Lookup(symName)
	if sym == alphabet.None || sym >= len(d.Horiz) || d.Horiz[sym] == nil {
		return alphabet.None
	}
	hz := d.Horiz[sym]
	st := hz.DFA.Start
	for _, q := range children {
		if q == alphabet.None {
			return alphabet.None
		}
		st = hz.DFA.Step(st, q)
		if st == sfa.Dead {
			return alphabet.None
		}
	}
	if st == sfa.Dead || st >= len(hz.Out) {
		return alphabet.None
	}
	return hz.Out[st]
}

// Accepts reports whether the DHA accepts the hedge.
func (d *DHA) Accepts(h hedge.Hedge) bool { return d.Exec(h).Accepted }

// ToNHA converts the DHA to an equivalent non-deterministic hedge
// automaton.
func (d *DHA) ToNHA() *NHA {
	n := NewNHA(d.Names)
	n.NumStates = d.NumStates
	n.Iota = make([][]int, len(d.Iota))
	for v, q := range d.Iota {
		if q != alphabet.None {
			n.Iota[v] = []int{q}
		}
	}
	for sym, hz := range d.Horiz {
		if hz == nil {
			continue
		}
		// α⁻¹(a, q) = words driving the horizontal DFA into a state with
		// Out = q.
		byResult := map[int][]int{}
		for hs, q := range hz.Out {
			if q != alphabet.None {
				byResult[q] = append(byResult[q], hs)
			}
		}
		for q, hstates := range byResult {
			dfa := hz.DFA.Clone()
			for i := range dfa.Accept {
				dfa.Accept[i] = false
			}
			for _, hs := range hstates {
				dfa.Accept[hs] = true
			}
			dfa.NumSymbols = d.NumStates
			n.AddRule(sym, q, dfa.ToNFA())
		}
	}
	n.Final = d.Final.ToNFA()
	n.Final.GrowAlphabet(d.NumStates)
	return n
}

// Complete returns an equivalent total DHA: a sink state is added, every
// horizontal DFA is made total over the (extended) state set with undefined
// results mapped to the sink, and every symbol of the Names interner gets a
// horizontal structure. The completed automaton assigns a state to every
// node of every hedge over the interned alphabet (as Theorem 3 requires).
func (d *DHA) Complete() *DHA {
	numQ := d.NumStates + 1
	sink := d.NumStates
	c := &DHA{
		Names:     d.Names,
		NumStates: numQ,
		Iota:      make([]int, d.Names.Vars.Len()),
		Horiz:     make([]*Horiz, d.Names.Syms.Len()),
	}
	for v := range c.Iota {
		c.Iota[v] = sink
		if v < len(d.Iota) && d.Iota[v] != alphabet.None {
			c.Iota[v] = d.Iota[v]
		}
	}
	for sym := range c.Horiz {
		var hz *Horiz
		if sym < len(d.Horiz) {
			hz = d.Horiz[sym]
		}
		if hz == nil {
			// Everything maps to the sink.
			dfa := sfa.NewDFA(numQ)
			s := dfa.AddState(true)
			dfa.Start = s
			for q := 0; q < numQ; q++ {
				dfa.SetTrans(s, q, s)
			}
			c.Horiz[sym] = &Horiz{DFA: dfa, Out: []int{sink}}
			continue
		}
		dfa := hz.DFA.Clone()
		dfa.NumSymbols = numQ
		dfa = dfa.Complete()
		out := make([]int, dfa.NumStates)
		for hs := range out {
			out[hs] = sink
			if hs < len(hz.Out) && hz.Out[hs] != alphabet.None {
				out[hs] = hz.Out[hs]
			}
		}
		c.Horiz[sym] = &Horiz{DFA: dfa, Out: out}
	}
	f := d.Final.Clone()
	f.NumSymbols = numQ
	c.Final = f.Complete()
	return c
}

// Complement returns a complete DHA accepting exactly the hedges over the
// interned alphabet that d rejects.
func (d *DHA) Complement() *DHA {
	c := d.Complete()
	c.Final = c.Final.Complement()
	return c
}

// IsEmpty reports whether the DHA accepts no hedge.
func (d *DHA) IsEmpty() bool {
	_, ok := d.SomeHedge()
	return !ok
}

// SomeHedge returns a hedge in the language and true, or nil and false when
// the language is empty. The returned hedge uses variable leaves for states
// produced by ι and is a minimal-ish witness.
func (d *DHA) SomeHedge() (hedge.Hedge, bool) {
	witness := make([]*hedge.Node, d.NumStates) // state → witness tree
	for v, q := range d.Iota {
		if q != alphabet.None && witness[q] == nil {
			witness[q] = hedge.NewVar(d.Names.Vars.Name(v))
		}
	}
	changed := true
	for changed {
		changed = false
		for sym, hz := range d.Horiz {
			if hz == nil {
				continue
			}
			// Restrict the horizontal DFA to inhabited state symbols and
			// look for reachable horizontal states with fresh outputs.
			for hs, q := range hz.Out {
				if q == alphabet.None || witness[q] != nil {
					continue
				}
				word, ok := someWordOver(hz.DFA, hs, witness)
				if !ok {
					continue
				}
				children := make(hedge.Hedge, len(word))
				for i, cq := range word {
					children[i] = witness[cq].Clone()
				}
				witness[q] = hedge.NewElem(d.Names.Syms.Name(sym), children...)
				changed = true
			}
		}
	}
	// Find an accepted top-level sequence over inhabited states.
	restricted := d.Final.Clone()
	for s := 0; s < restricted.NumStates; s++ {
		for symQ := range restricted.Trans[s] {
			if symQ < len(witness) && witness[symQ] == nil {
				delete(restricted.Trans[s], symQ)
			}
		}
	}
	top, ok := restricted.SomeWord()
	if !ok {
		return nil, false
	}
	out := make(hedge.Hedge, len(top))
	for i, q := range top {
		out[i] = witness[q].Clone()
	}
	return out, true
}

// someWordOver finds a word over inhabited symbols (witness[q] != nil)
// driving dfa from its start to the target state.
func someWordOver(dfa *sfa.DFA, target int, witness []*hedge.Node) ([]int, bool) {
	restricted := dfa.Clone()
	for s := 0; s < restricted.NumStates; s++ {
		for symQ := range restricted.Trans[s] {
			if symQ >= len(witness) || witness[symQ] == nil {
				delete(restricted.Trans[s], symQ)
			}
		}
		restricted.Accept[s] = s == target
	}
	return restricted.SomeWord()
}

// Equivalent reports whether two DHAs over the same Names accept the same
// language.
func Equivalent(a, b *DHA) (bool, error) {
	diff1, err := ProductDHA(a, b, func(x, y bool) bool { return x && !y })
	if err != nil {
		return false, err
	}
	if !diff1.IsEmpty() {
		return false, nil
	}
	diff2, err := ProductDHA(b, a, func(x, y bool) bool { return x && !y })
	if err != nil {
		return false, err
	}
	return diff2.IsEmpty(), nil
}

// ProductDHA builds the product of two complete(d) DHAs over the same
// Names. The product assigns pair states; acceptance of a top sequence is
// acc(a accepts, b accepts). The returned automaton is complete. The second
// result maps product states back to (a-state, b-state) pairs.
func ProductDHA(a, b *DHA, acc func(x, y bool) bool) (*DHA, error) {
	if a.Names != b.Names {
		return nil, fmt.Errorf("ha: product of automata over different Names")
	}
	ac, bc := a.Complete(), b.Complete()
	na, nb := ac.NumStates, bc.NumStates
	pairID := func(x, y int) int { return x*nb + y }
	p := &DHA{
		Names:     a.Names,
		NumStates: na * nb,
		Iota:      make([]int, len(ac.Iota)),
		Horiz:     make([]*Horiz, len(ac.Horiz)),
	}
	for v := range p.Iota {
		p.Iota[v] = pairID(ac.Iota[v], bc.Iota[v])
	}
	for sym := range p.Horiz {
		ha, hb := ac.Horiz[sym], bc.Horiz[sym]
		hDFA := sfa.NewDFA(p.NumStates)
		nhb := hb.DFA.NumStates
		hpair := func(x, y int) int { return x*nhb + y }
		out := make([]int, ha.DFA.NumStates*nhb)
		for x := 0; x < ha.DFA.NumStates; x++ {
			for y := 0; y < nhb; y++ {
				hDFA.AddState(false)
				out[hpair(x, y)] = pairID(ha.Out[x], hb.Out[y])
			}
		}
		hDFA.Start = hpair(ha.DFA.Start, hb.DFA.Start)
		for x := 0; x < ha.DFA.NumStates; x++ {
			for y := 0; y < nhb; y++ {
				for qa := 0; qa < na; qa++ {
					for qb := 0; qb < nb; qb++ {
						hDFA.SetTrans(hpair(x, y), pairID(qa, qb),
							hpair(ha.DFA.Step(x, qa), hb.DFA.Step(y, qb)))
					}
				}
			}
		}
		p.Horiz[sym] = &Horiz{DFA: hDFA, Out: out}
	}
	// Final: product of the two final DFAs over pair symbols.
	fa, fb := ac.Final, bc.Final
	fDFA := sfa.NewDFA(p.NumStates)
	nfb := fb.NumStates
	fpair := func(x, y int) int { return x*nfb + y }
	for x := 0; x < fa.NumStates; x++ {
		for y := 0; y < nfb; y++ {
			fDFA.AddState(acc(fa.Accept[x], fb.Accept[y]))
		}
	}
	fDFA.Start = fpair(fa.Start, fb.Start)
	for x := 0; x < fa.NumStates; x++ {
		for y := 0; y < nfb; y++ {
			for qa := 0; qa < na; qa++ {
				for qb := 0; qb < nb; qb++ {
					fDFA.SetTrans(fpair(x, y), pairID(qa, qb),
						fpair(fa.Step(x, qa), fb.Step(y, qb)))
				}
			}
		}
	}
	p.Final = fDFA
	return p, nil
}

// Intersect returns a DHA for L(a) ∩ L(b).
func Intersect(a, b *DHA) (*DHA, error) {
	return ProductDHA(a, b, func(x, y bool) bool { return x && y })
}

// Union returns a DHA for L(a) ∪ L(b).
func Union(a, b *DHA) (*DHA, error) {
	return ProductDHA(a, b, func(x, y bool) bool { return x || y })
}
