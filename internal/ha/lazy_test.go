package ha

import (
	"math/rand"
	"testing"

	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// lazyAgreeOn checks the three-way membership agreement NHA vs eager
// determinization vs lazy determinization on one hedge.
func lazyAgreeOn(t *testing.T, n *NHA, det *Det, lazy *LazyDet, h hedge.Hedge) {
	t.Helper()
	want := n.Accepts(h)
	if got := det.DHA.Accepts(h); got != want {
		t.Fatalf("eager Determinize disagrees with NHA on %v: eager=%v nha=%v", h, got, want)
	}
	if got := lazy.Accepts(h); got != want {
		t.Fatalf("LazyDeterminize disagrees with NHA on %v: lazy=%v nha=%v", h, got, want)
	}
}

func randomHedges(seed int64, count int) []hedge.Hedge {
	rng := rand.New(rand.NewSource(seed))
	cfg := hedge.RandConfig{
		Symbols:  []string{"d", "p"},
		Vars:     []string{"x", "y"},
		MaxDepth: 4,
		MaxWidth: 3,
	}
	out := make([]hedge.Hedge, count)
	for i := range out {
		out[i] = hedge.Random(rng, cfg)
	}
	return out
}

func TestLazyMatchesEagerOnPaperExamples(t *testing.T) {
	for name, build := range map[string]func(testing.TB) *NHA{"M0": paperM0, "M1": paperM1} {
		t.Run(name, func(t *testing.T) {
			n := build(t)
			det := n.Determinize()
			lazy := n.LazyDeterminize(LazyOptions{})
			for _, src := range []string{
				"", "d<p<$x> p<$y>> d<p<$x>>", "d<p<$x>>", "d<p<$y>>",
				"d<p<$x> p<$x>>", "p<$x>", "d<>", "d<p<$x> p<$y> p<$y>>",
				"d<p<$x> p<$x> p<$x>>", "$x", "d<$x>",
			} {
				lazyAgreeOn(t, n, det, lazy, hedge.MustParse(src))
			}
			for _, h := range randomHedges(7, 200) {
				lazyAgreeOn(t, n, det, lazy, h)
			}
			st := lazy.Stats()
			if st.StatesBuilt == 0 || st.Subsets == 0 {
				t.Fatalf("lazy construction built nothing: %+v", st)
			}
			if st.Hits == 0 {
				t.Fatalf("repeated evaluation produced no transition-cache hits: %+v", st)
			}
		})
	}
}

// TestLazyBudgetEviction forces transition-cache flushes with a tiny budget
// and checks that membership answers are unaffected (states survive the
// flush; transitions are recomputed).
func TestLazyBudgetEviction(t *testing.T) {
	n := paperM1(t)
	det := n.Determinize()
	lazy := n.LazyDeterminize(LazyOptions{TransitionBudget: 2})
	for _, h := range randomHedges(11, 300) {
		lazyAgreeOn(t, n, det, lazy, h)
	}
	st := lazy.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under TransitionBudget=2, got %+v", st)
	}
}

// TestLazyBudgetUnbounded pins the internal "no bound" representation: a
// negative TransitionBudget must never evict, however small the magnitude
// — it is a mode, not a cap of -n. (The facade maps its public "0 =
// unlimited" onto this; the ha zero keeps meaning
// DefaultLazyTransitionBudget.)
func TestLazyBudgetUnbounded(t *testing.T) {
	n := paperM1(t)
	det := n.Determinize()
	lazy := n.LazyDeterminize(LazyOptions{TransitionBudget: -1})
	for _, h := range randomHedges(11, 300) {
		lazyAgreeOn(t, n, det, lazy, h)
	}
	st := lazy.Stats()
	if st.StatesBuilt == 0 {
		t.Fatalf("lazy construction built nothing: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("negative budget must disable eviction, got %+v", st)
	}
}

// TestLazyNeverExceedsEager: the lazily materialized DHA states (subsets)
// are a subset of the eager construction's reachable subsets, so the count
// is bounded by it.
func TestLazyNeverExceedsEager(t *testing.T) {
	n := paperM1(t)
	det := n.Determinize()
	lazy := n.LazyDeterminize(LazyOptions{})
	for _, h := range randomHedges(13, 500) {
		_ = lazy.Accepts(h)
	}
	if got, limit := lazy.Stats().Subsets, int64(det.Subsets.Len()); got > limit {
		t.Fatalf("lazy interned %d subsets, eager construction has only %d", got, limit)
	}
}

func TestLazyFlushDelta(t *testing.T) {
	n := paperM0(t)
	lazy := n.LazyDeterminize(LazyOptions{})
	_ = lazy.Accepts(hedge.MustParse("d<p<$x>>"))
	d1 := lazy.FlushDelta()
	if d1.StatesBuilt == 0 {
		t.Fatalf("first delta empty: %+v", d1)
	}
	d2 := lazy.FlushDelta()
	if d2.StatesBuilt != 0 || d2.Misses != 0 {
		t.Fatalf("second delta not reset: %+v", d2)
	}
	total := lazy.Stats()
	if sum := d1.Add(d2); sum != total {
		t.Fatalf("deltas %+v do not sum to cumulative %+v", sum, total)
	}
}

// fuzzReader consumes fuzz bytes as a bounded decision stream.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) next(n int) int {
	if n <= 0 {
		return 0
	}
	if r.pos >= len(r.data) {
		return 0
	}
	v := int(r.data[r.pos]) % n
	r.pos++
	return v
}

// randomNHAFrom decodes an arbitrary small NHA from fuzz bytes: a handful
// of states, rules with small horizontal NFAs, iota images, and a final
// NFA. Every decode is total — any byte string yields a valid automaton.
func randomNHAFrom(r *fuzzReader) (*NHA, []string, []string) {
	syms := []string{"a", "b", "c"}[:1+r.next(3)]
	vars := []string{"x", "y"}[:r.next(3)]
	names := NewNames()
	for _, s := range syms {
		names.Syms.Intern(s)
	}
	for _, v := range vars {
		names.Vars.Intern(v)
	}
	n := NewNHA(names)
	numStates := 1 + r.next(4)
	for i := 0; i < numStates; i++ {
		n.AddState()
	}
	for vi := range vars {
		for k := r.next(3); k > 0; k-- {
			n.AddIota(vi, r.next(numStates))
		}
	}
	numRules := r.next(5)
	for i := 0; i < numRules; i++ {
		sym := r.next(len(syms))
		result := r.next(numStates)
		n.AddRule(sym, result, randomNFAFrom(r, numStates))
	}
	n.Final = randomNFAFrom(r, numStates)
	n.Final.GrowAlphabet(numStates)
	return n, syms, vars
}

func randomNFAFrom(r *fuzzReader, numSymbols int) *sfa.NFA {
	nfa := sfa.NewNFA(numSymbols)
	states := 1 + r.next(3)
	for i := 0; i < states; i++ {
		nfa.AddState(r.next(2) == 1)
	}
	for k := 1 + r.next(2); k > 0; k-- {
		nfa.MarkStart(r.next(states))
	}
	for k := r.next(7); k > 0; k-- {
		nfa.AddTrans(r.next(states), r.next(numSymbols), r.next(states))
	}
	for k := r.next(3); k > 0; k-- {
		nfa.AddEps(r.next(states), r.next(states))
	}
	return nfa
}

// FuzzLazyVsEagerDeterminize decodes a random NHA from the fuzz input,
// determinizes it both eagerly and lazily (including a tiny-budget lazy
// variant that is forced to evict), and checks membership agreement with
// the NHA itself on sampled hedges.
func FuzzLazyVsEagerDeterminize(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, int64(2))
	f.Add([]byte{9, 0, 1, 3, 3, 3, 1, 0, 2, 2, 4, 1, 1, 0, 7, 5}, int64(3))
	f.Add([]byte{2, 2, 4, 4, 1, 1, 0, 0, 3, 3, 2, 2, 8, 8, 1, 1, 6, 6}, int64(4))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		r := &fuzzReader{data: data}
		n, syms, vars := randomNHAFrom(r)
		det := n.Determinize()
		lazy := n.LazyDeterminize(LazyOptions{})
		tiny := n.LazyDeterminize(LazyOptions{TransitionBudget: 1})
		rng := rand.New(rand.NewSource(seed))
		cfg := hedge.RandConfig{Symbols: syms, Vars: vars, MaxDepth: 3, MaxWidth: 3}
		if len(vars) == 0 {
			cfg.Vars = nil
		}
		for i := 0; i < 25; i++ {
			h := hedge.Random(rng, cfg)
			want := n.Accepts(h)
			if got := det.DHA.Accepts(h); got != want {
				t.Fatalf("eager disagrees with NHA on %v: %v vs %v", h, got, want)
			}
			if got := lazy.Accepts(h); got != want {
				t.Fatalf("lazy disagrees with NHA on %v: %v vs %v", h, got, want)
			}
			if got := tiny.Accepts(h); got != want {
				t.Fatalf("tiny-budget lazy disagrees with NHA on %v: %v vs %v", h, got, want)
			}
		}
		if got, limit := lazy.Stats().Subsets, int64(det.Subsets.Len()); got > limit {
			t.Fatalf("lazy interned %d subsets, eager has %d", got, limit)
		}
	})
}
