package ha

import (
	"fmt"

	"xpe/internal/alphabet"
	"xpe/internal/sfa"
	"xpe/internal/sre"
)

// Builder assembles an NHA from named states and string regular
// expressions over those state names, mirroring how the paper presents
// automata (e.g. the automaton M₀ of Section 3 with α₀(d,u)=q_d for
// u ∈ L(q_p1 q_p2*)).
type Builder struct {
	names  *Names
	states *alphabet.Interner
	nha    *NHA
}

// NewBuilder returns a builder over the given names.
func NewBuilder(names *Names) *Builder {
	return &Builder{
		names:  names,
		states: alphabet.NewInterner(),
		nha:    NewNHA(names),
	}
}

// State interns a state name and returns its id.
func (b *Builder) State(name string) int {
	id := b.states.Intern(name)
	for b.nha.NumStates <= id {
		b.nha.AddState()
	}
	return id
}

// StateName returns the name of state id.
func (b *Builder) StateName(id int) string { return b.states.Name(id) }

// Iota declares q ∈ ι(varName).
func (b *Builder) Iota(varName, state string) {
	v := b.names.Vars.Intern(varName)
	b.nha.AddIota(v, b.State(state))
}

// Rule declares α(sym, u) ∋ result for u ∈ L(langExpr), where langExpr is a
// string regular expression over state names.
func (b *Builder) Rule(sym, result, langExpr string) error {
	e, err := sre.Parse(langExpr)
	if err != nil {
		return fmt.Errorf("ha: rule %s→%s: %w", sym, result, err)
	}
	for _, n := range e.SymbolNames() {
		b.State(n)
	}
	lang := e.CompileNFA(b.states)
	b.nha.AddRule(b.names.Syms.Intern(sym), b.State(result), lang)
	return nil
}

// RuleEps declares α(sym, ε) ∋ result, i.e. sym may label a childless node
// yielding result.
func (b *Builder) RuleEps(sym, result string) {
	b.nha.AddRule(b.names.Syms.Intern(sym), b.State(result), sfa.EpsLang(b.nha.NumStates))
}

// Final declares the final state sequence set F as a string regular
// expression over state names.
func (b *Builder) Final(expr string) error {
	e, err := sre.Parse(expr)
	if err != nil {
		return fmt.Errorf("ha: final set: %w", err)
	}
	for _, n := range e.SymbolNames() {
		b.State(n)
	}
	b.nha.Final = e.CompileNFA(b.states)
	return nil
}

// Build returns the assembled NHA. The builder can keep being used; Build
// may be called repeatedly.
func (b *Builder) Build() *NHA {
	// Normalize language alphabets to the final state count.
	for i := range b.nha.Rules {
		b.nha.Rules[i].Lang.GrowAlphabet(b.nha.NumStates)
	}
	b.nha.Final.GrowAlphabet(b.nha.NumStates)
	return b.nha
}

// MustRule is Rule, panicking on error.
func (b *Builder) MustRule(sym, result, langExpr string) {
	if err := b.Rule(sym, result, langExpr); err != nil {
		panic(err)
	}
}

// MustFinal is Final, panicking on error.
func (b *Builder) MustFinal(expr string) {
	if err := b.Final(expr); err != nil {
		panic(err)
	}
}
