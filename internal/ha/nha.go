package ha

import (
	"sort"

	"xpe/internal/alphabet"
	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// Rule is one transition family of a non-deterministic hedge automaton:
// α⁻¹(a, q) ⊇ L(Lang), i.e. reading symbol Sym over a child-state sequence
// in Lang may yield state Result (Definition 6).
type Rule struct {
	Sym    int      // symbol id in Names.Syms
	Result int      // resulting state
	Lang   *sfa.NFA // language over state ids
}

// NHA is a non-deterministic hedge automaton (Definition 6).
type NHA struct {
	Names     *Names
	NumStates int
	Iota      [][]int  // variable id → set of states
	Rules     []Rule   // transition families
	Final     *sfa.NFA // NFA over Q accepting the final state sequences
}

// NewNHA returns an empty NHA over the given names, with an empty final
// set.
func NewNHA(names *Names) *NHA {
	return &NHA{Names: names, Final: sfa.EmptyLang(0)}
}

// AddState adds a fresh state and returns its id.
func (n *NHA) AddState() int {
	n.NumStates++
	return n.NumStates - 1
}

// AddRule registers a transition family.
func (n *NHA) AddRule(sym, result int, lang *sfa.NFA) {
	lang.GrowAlphabet(n.NumStates)
	n.Rules = append(n.Rules, Rule{Sym: sym, Result: result, Lang: lang})
}

// AddIota registers q ∈ ι(v).
func (n *NHA) AddIota(v, q int) {
	for len(n.Iota) <= v {
		n.Iota = append(n.Iota, nil)
	}
	n.Iota[v] = append(n.Iota[v], q)
}

// NRun records the set of reachable states per node — the deterministic
// simulation of the set of computations M‖u (Definition 7).
type NRun struct {
	Sets     map[*hedge.Node][]int
	Top      [][]int // per top-level node, the set of reachable states
	Accepted bool
}

// Exec computes the reachable-state sets of every node and acceptance
// (Definition 8): the hedge is accepted iff some choice of per-node states
// forms a computation whose ceil is in F.
func (n *NHA) Exec(h hedge.Hedge) *NRun {
	r := &NRun{Sets: make(map[*hedge.Node][]int, h.Size())}
	r.Top = n.execHedge(h, r)
	r.Accepted = n.acceptsSets(n.Final, r.Top)
	return r
}

// acceptsSets reports whether some word w with w[i] ∈ sets[i] is accepted
// by the NFA (a subset simulation over symbol sets).
func (n *NHA) acceptsSets(nfa *sfa.NFA, sets [][]int) bool {
	cur := nfa.EpsClosure(nfa.Start)
	for _, set := range sets {
		next := map[int]bool{}
		for _, s := range cur {
			for _, sym := range set {
				for _, t := range nfa.Trans[s][sym] {
					next[t] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		lst := make([]int, 0, len(next))
		for s := range next {
			lst = append(lst, s)
		}
		cur = nfa.EpsClosure(lst)
	}
	for _, s := range cur {
		if nfa.Accept[s] {
			return true
		}
	}
	return false
}

func (n *NHA) execHedge(h hedge.Hedge, r *NRun) [][]int {
	sets := make([][]int, len(h))
	for i, node := range h {
		sets[i] = n.execNode(node, r)
	}
	return sets
}

func (n *NHA) execNode(node *hedge.Node, r *NRun) []int {
	var set []int
	switch node.Kind {
	case hedge.Var:
		if v := n.Names.Vars.Lookup(node.Name); v != alphabet.None && v < len(n.Iota) {
			set = append([]int(nil), n.Iota[v]...)
		}
	case hedge.Subst:
		if v := n.Names.Vars.Lookup(SubstVarName(node.Name)); v != alphabet.None && v < len(n.Iota) {
			set = append([]int(nil), n.Iota[v]...)
		}
	case hedge.Elem:
		children := n.execHedge(node.Children, r)
		sym := n.Names.Syms.Lookup(node.Name)
		if sym != alphabet.None {
			resultSet := map[int]bool{}
			for _, rule := range n.Rules {
				if rule.Sym != sym || resultSet[rule.Result] {
					continue
				}
				if n.acceptsSets(rule.Lang, children) {
					resultSet[rule.Result] = true
				}
			}
			set = make([]int, 0, len(resultSet))
			for q := range resultSet {
				set = append(set, q)
			}
			sort.Ints(set)
		}
	}
	r.Sets[node] = set
	return set
}

// Accepts reports whether the NHA accepts the hedge.
func (n *NHA) Accepts(h hedge.Hedge) bool { return n.Exec(h).Accepted }

// IsEmpty reports whether the NHA accepts no hedge, by the inhabited-state
// fixpoint: a state is inhabited when some hedge can reach it.
func (n *NHA) IsEmpty() bool {
	inhabited := n.InhabitedStates()
	restricted := restrictNFA(n.Final, inhabited)
	return restricted.IsEmpty()
}

// InhabitedStates returns, per state, whether some hedge reaches it.
func (n *NHA) InhabitedStates() []bool {
	inhabited := make([]bool, n.NumStates)
	for _, qs := range n.Iota {
		for _, q := range qs {
			inhabited[q] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, rule := range n.Rules {
			if inhabited[rule.Result] {
				continue
			}
			if !restrictNFA(rule.Lang, inhabited).IsEmpty() {
				inhabited[rule.Result] = true
				changed = true
			}
		}
	}
	return inhabited
}

// restrictNFA removes transitions on symbols q with !keep[q].
func restrictNFA(nfa *sfa.NFA, keep []bool) *sfa.NFA {
	return nfa.MapSymbols(nfa.NumSymbols, func(sym int) []int {
		if sym < len(keep) && keep[sym] {
			return []int{sym}
		}
		return nil
	})
}

// Determinization — Theorem 1.

// Det is the result of determinizing an NHA: a complete DHA whose states
// are the reachable subsets of the NHA's states, plus the mapping from DHA
// states to those subsets.
type Det struct {
	DHA     *DHA
	Subsets *alphabet.TupleInterner // DHA state → sorted NHA state subset
}

// SubsetOf returns the NHA state subset represented by DHA state q.
func (d *Det) SubsetOf(q int) []int { return d.Subsets.Tuple(q) }

// Determinize applies the subset construction of Theorem 1, exploring only
// reachable subsets. The resulting DHA is complete over the interned
// alphabet: every hedge receives a computation (the empty subset acts as
// the sink).
func (n *NHA) Determinize() *Det {
	subsets := alphabet.NewTupleInterner()
	empty := subsets.Intern(nil)
	_ = empty

	// combined per-symbol NFA over Q with per-accept-state results.
	type combined struct {
		nfa     *sfa.NFA
		results map[int]int // nfa accept state → NHA result state
	}
	bySym := map[int]*combined{}
	for _, rule := range n.Rules {
		c := bySym[rule.Sym]
		if c == nil {
			c = &combined{nfa: sfa.NewNFA(n.NumStates), results: map[int]int{}}
			bySym[rule.Sym] = c
		}
		offset := c.nfa.NumStates
		for i := 0; i < rule.Lang.NumStates; i++ {
			c.nfa.AddState(false)
		}
		for s := 0; s < rule.Lang.NumStates; s++ {
			for sym, ts := range rule.Lang.Trans[s] {
				for _, t := range ts {
					c.nfa.AddTrans(offset+s, sym, offset+t)
				}
			}
			for _, t := range rule.Lang.Eps[s] {
				c.nfa.AddEps(offset+s, offset+t)
			}
			if rule.Lang.Accept[s] {
				c.results[offset+s] = rule.Result
			}
		}
		for _, s := range rule.Lang.Start {
			c.nfa.MarkStart(offset + s)
		}
	}

	// Seed DHA states with ι images (and the empty subset).
	vars := n.Names.Vars.Len()
	iota := make([]int, vars)
	for v := 0; v < vars; v++ {
		var qs []int
		if v < len(n.Iota) {
			qs = normalizeSet(n.Iota[v])
		}
		iota[v] = subsets.Intern(qs)
	}

	// Iterate to a fixpoint: subset alphabet may grow while horizontal
	// automata are explored, so rebuild until stable.
	for {
		before := subsets.Len()
		for _, c := range bySym {
			exploreHorizontal(c.nfa, c.results, subsets)
		}
		if subsets.Len() == before {
			break
		}
	}

	numQ := subsets.Len()
	d := &DHA{
		Names:     n.Names,
		NumStates: numQ,
		Iota:      iota,
		Horiz:     make([]*Horiz, n.Names.Syms.Len()),
	}
	for sym := 0; sym < n.Names.Syms.Len(); sym++ {
		c := bySym[sym]
		if c == nil {
			// No rules: every child sequence yields the empty subset.
			dfa := sfa.NewDFA(numQ)
			s := dfa.AddState(true)
			dfa.Start = s
			for q := 0; q < numQ; q++ {
				dfa.SetTrans(s, q, s)
			}
			d.Horiz[sym] = &Horiz{DFA: dfa, Out: []int{subsets.Intern(nil)}}
			continue
		}
		d.Horiz[sym] = buildHorizontal(c.nfa, c.results, subsets)
	}
	d.Final = determinizeOverSubsets(n.Final, subsets)
	return &Det{DHA: d, Subsets: subsets}
}

func normalizeSet(qs []int) []int {
	if len(qs) == 0 {
		return nil
	}
	cp := append([]int(nil), qs...)
	sort.Ints(cp)
	out := cp[:1]
	for _, q := range cp[1:] {
		if q != out[len(out)-1] {
			out = append(out, q)
		}
	}
	return out
}

// stepNFAOnSubset advances an NFA-state set on a set-symbol (the union over
// the NHA states in the subset), ε-closed.
func stepNFAOnSubset(nfa *sfa.NFA, from []int, subset []int) []int {
	next := map[int]bool{}
	for _, s := range from {
		for _, q := range subset {
			for _, t := range nfa.Trans[s][q] {
				next[t] = true
			}
		}
	}
	if len(next) == 0 {
		return nil
	}
	lst := make([]int, 0, len(next))
	for s := range next {
		lst = append(lst, s)
	}
	return nfa.EpsClosure(lst)
}

// resultSubset extracts the NHA result subset of an NFA-state set.
func resultSubset(set []int, results map[int]int) []int {
	var out []int
	for _, s := range set {
		if q, ok := results[s]; ok {
			out = append(out, q)
		}
	}
	return normalizeSet(out)
}

// exploreHorizontal discovers every result subset reachable with the
// current subset alphabet, interning new subsets as it goes.
func exploreHorizontal(nfa *sfa.NFA, results map[int]int, subsets *alphabet.TupleInterner) {
	seen := map[string]bool{}
	keyOf := func(set []int) string {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}
	start := nfa.EpsClosure(nfa.Start)
	queue := [][]int{start}
	seen[keyOf(start)] = true
	subsets.Intern(resultSubset(start, results))
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// NOTE: subsets.Len() may grow during this loop; iterating by
		// index covers newly added subsets in later queue entries because
		// the outer fixpoint re-runs exploreHorizontal until stable.
		for id := 0; id < subsets.Len(); id++ {
			next := stepNFAOnSubset(nfa, cur, subsets.Tuple(id))
			subsets.Intern(resultSubset(next, results))
			k := keyOf(next)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
}

// buildHorizontal constructs the final horizontal DFA over the (now stable)
// subset alphabet.
func buildHorizontal(nfa *sfa.NFA, results map[int]int, subsets *alphabet.TupleInterner) *Horiz {
	numQ := subsets.Len()
	dfa := sfa.NewDFA(numQ)
	ids := map[string]int{}
	var sets [][]int
	var out []int
	keyOf := func(set []int) string {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}
	get := func(set []int) int {
		k := keyOf(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := dfa.AddState(false)
		ids[k] = id
		sets = append(sets, set)
		out = append(out, subsets.Lookup(resultSubset(set, results)))
		return id
	}
	dfa.Start = get(nfa.EpsClosure(nfa.Start))
	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		from := i
		for id := 0; id < numQ; id++ {
			next := stepNFAOnSubset(nfa, cur, subsets.Tuple(id))
			dfa.SetTrans(from, id, get(next))
		}
	}
	return &Horiz{DFA: dfa, Out: out}
}

// determinizeOverSubsets builds a DFA over the subset alphabet accepting a
// subset-symbol word S₁…S_k iff some q₁…q_k with qᵢ ∈ Sᵢ is accepted by
// the NFA.
func determinizeOverSubsets(nfa *sfa.NFA, subsets *alphabet.TupleInterner) *sfa.DFA {
	numQ := subsets.Len()
	dfa := sfa.NewDFA(numQ)
	ids := map[string]int{}
	var sets [][]int
	keyOf := func(set []int) string {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return string(b)
	}
	accepting := func(set []int) bool {
		for _, s := range set {
			if nfa.Accept[s] {
				return true
			}
		}
		return false
	}
	get := func(set []int) int {
		k := keyOf(set)
		if id, ok := ids[k]; ok {
			return id
		}
		id := dfa.AddState(accepting(set))
		ids[k] = id
		sets = append(sets, set)
		return id
	}
	dfa.Start = get(nfa.EpsClosure(nfa.Start))
	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		from := i
		for id := 0; id < numQ; id++ {
			next := stepNFAOnSubset(nfa, cur, subsets.Tuple(id))
			dfa.SetTrans(from, id, get(next))
		}
	}
	return dfa
}
