package ha

import (
	"math/rand"
	"testing"

	"xpe/internal/hedge"
)

func TestSamplerMembersAreMembers(t *testing.T) {
	det := paperM0(t).Determinize()
	rng := rand.New(rand.NewSource(3))
	s, ok := NewSampler(det.DHA, rng)
	if !ok {
		t.Fatal("M0 is non-empty")
	}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		h, ok := s.Sample(4)
		if !ok {
			t.Fatal("sample failed")
		}
		if !det.DHA.Accepts(h) {
			t.Fatalf("sampled non-member %q", h)
		}
		seen[h.String()] = true
	}
	if len(seen) < 5 {
		t.Fatalf("sampler shows no diversity: %d distinct members", len(seen))
	}
}

func TestSamplerEmptyLanguage(t *testing.T) {
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("a", "qa", "qnever")
	b.MustFinal("qa")
	det := b.Build().Determinize()
	if _, ok := NewSampler(det.DHA, rand.New(rand.NewSource(1))); ok {
		t.Fatal("sampler must reject an empty language")
	}
}

func TestSamplerDepthBudget(t *testing.T) {
	// All-a hedges: sampling with a depth budget must terminate and stay in
	// the language.
	names := NewNames()
	names.Syms.Intern("a")
	b := NewBuilder(names)
	b.MustRule("a", "qa", "qa*")
	b.MustFinal("qa*")
	det := b.Build().Determinize()
	rng := rand.New(rand.NewSource(7))
	s, ok := NewSampler(det.DHA, rng)
	if !ok {
		t.Fatal("language is non-empty")
	}
	for i := 0; i < 100; i++ {
		h, ok := s.Sample(3)
		if !ok {
			t.Fatal("sample failed")
		}
		if !det.DHA.Accepts(h) {
			t.Fatalf("non-member %q", h)
		}
	}
}

func TestBuilderAuxiliaries(t *testing.T) {
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	id := b.State("q0")
	if b.StateName(id) != "q0" {
		t.Fatal("StateName wrong")
	}
	b.RuleEps("a", "qa")
	b.MustFinal("qa")
	m := b.Build()
	if !m.Accepts(hedge.MustParse("a")) {
		t.Fatal("RuleEps should accept a childless a")
	}
	if m.Accepts(hedge.MustParse("a<a>")) {
		t.Fatal("RuleEps must not accept children")
	}
	if got := m.Names.Syms.Len(); got == 0 {
		t.Fatal("names not threaded")
	}
	det := m.Determinize()
	if det.DHA.NumSyms() == 0 {
		t.Fatal("NumSyms should reflect the horizontal table")
	}
	if SubstVarName("z") == "z" {
		t.Fatal("SubstVarName must be reserved")
	}
}
