package ha

import (
	"testing"

	"xpe/internal/hedge"
)

func TestPaperM1Unambiguous(t *testing.T) {
	// M₁ (Section 3) is nondeterministic — the second p of d⟨p⟨xx⟩p⟨xx⟩⟩
	// can reach qp1 or qp2 — but it has only ONE successful computation:
	// the d rule demands qp1 qp2*, which filters the (qp1, qp1) choice.
	// Nondeterminism is not ambiguity.
	m := paperM1(t)
	if m.Ambiguous() {
		t.Fatal("M1 has a unique successful computation per hedge")
	}
}

func TestAmbiguousRelaxedM1(t *testing.T) {
	// Relaxing d's horizontal language to (qp1|qp2)* makes both choices
	// complete: genuinely ambiguous.
	names := NewNames()
	names.Syms.Intern("d")
	names.Syms.Intern("p")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("d", "qd", "(qp1 | qp2)*")
	b.MustRule("p", "qp1", "qx qx")
	b.MustRule("p", "qp2", "qx qx")
	b.MustFinal("qd*")
	m := b.Build()
	if !m.Ambiguous() {
		t.Fatal("relaxed M1 should be ambiguous")
	}
	w, ok := m.AmbiguityWitness()
	if !ok {
		t.Fatal("no witness")
	}
	if !m.Accepts(w) {
		t.Fatalf("witness %v not accepted", w)
	}
	if m.UnambiguousOn(w) {
		t.Fatalf("witness %v should have two computations", w)
	}
}

func TestUnambiguousPaperM0(t *testing.T) {
	// M₀ is deterministic, hence unambiguous.
	m := paperM0(t)
	if m.Ambiguous() {
		t.Fatal("M0 should be unambiguous")
	}
	if _, ok := m.AmbiguityWitness(); ok {
		t.Fatal("unexpected witness")
	}
}

func TestAmbiguousUnionOverlap(t *testing.T) {
	// Two rules for the same (symbol, different results) covering the same
	// child word: classic ambiguity.
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("a", "q1", "qx")
	b.MustRule("a", "q2", "qx")
	b.MustFinal("q1 | q2")
	m := b.Build()
	if !m.Ambiguous() {
		t.Fatal("overlapping rules should be ambiguous")
	}
	// Restricting the final set to one result removes the ambiguity:
	// the q2 computation no longer completes.
	b2 := NewBuilder(names)
	b2.Iota("x", "px")
	b2.MustRule("a", "p1", "px")
	b2.MustRule("a", "p2", "px")
	b2.MustFinal("p1")
	if b2.Build().Ambiguous() {
		t.Fatal("dead nondeterminism is not ambiguity")
	}
}

func TestAmbiguousHorizontalOverlap(t *testing.T) {
	// One rule whose language overlaps with another rule of the SAME
	// result is not ambiguous (same computation either way)...
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("a", "q", "qx*")
	b.MustRule("a", "q", "qx qx*") // overlapping language, same result
	b.MustFinal("q")
	if b.Build().Ambiguous() {
		t.Fatal("overlapping rules with one result are not ambiguous")
	}
}

func TestAmbiguousLeafChoice(t *testing.T) {
	// A variable mapped to two states, both completable: ambiguous at the
	// leaf.
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	b.Iota("x", "q1")
	b.Iota("x", "q2")
	b.MustRule("a", "qa", "q1 | q2")
	b.MustFinal("qa")
	m := b.Build()
	if !m.Ambiguous() {
		t.Fatal("leaf-level nondeterminism should be ambiguous")
	}
	if !m.UnambiguousOn(hedge.MustParse("a<$x> a<$x>")) {
		t.Fatal("rejected hedges are trivially unambiguous")
	}
	if m.UnambiguousOn(hedge.MustParse("a<$x>")) {
		t.Fatal("a<$x> has two computations")
	}
}
