package ha

import (
	"math/rand"
	"testing"

	"xpe/internal/hedge"
)

// paperM0 builds the paper's Section-3 example M₀: it accepts any sequence
// of trees d⟨p⟨x⟩⟩, d⟨p⟨x⟩p⟨y⟩⟩, … — each d has one p⟨x⟩ followed by any
// number of p⟨y⟩.
func paperM0(t testing.TB) *NHA {
	names := NewNames()
	names.Syms.Intern("d")
	names.Syms.Intern("p")
	names.Vars.Intern("x")
	names.Vars.Intern("y")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.Iota("y", "qy")
	b.MustRule("d", "qd", "qp1, qp2*")
	b.MustRule("p", "qp1", "qx")
	b.MustRule("p", "qp2", "qy")
	b.MustFinal("qd*")
	return b.Build()
}

// paperM1 builds the paper's non-deterministic example M₁: d over p-children
// where every p has children x x; the first p yields qp1, later ones may
// yield qp1 or qp2; acceptance requires qd at the top... (Final in the paper
// is printed as L(q_x*), an apparent typo for L(q_d*); we use qd*.)
func paperM1(t testing.TB) *NHA {
	names := NewNames()
	names.Syms.Intern("d")
	names.Syms.Intern("p")
	names.Vars.Intern("x")
	names.Vars.Intern("y")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("d", "qd", "qp1, qp2*")
	b.MustRule("p", "qp1", "qx, qx")
	b.MustRule("p", "qp2", "qx, qx")
	b.MustRule("p", "qp1", "qx")
	b.MustFinal("qd*")
	return b.Build()
}

func TestPaperM0(t *testing.T) {
	m := paperM0(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"d<p<$x> p<$y>> d<p<$x>>", true}, // the paper's worked example
		{"d<p<$x>>", true},
		{"", true}, // F = qd* contains ε
		{"d<p<$y>>", false},
		{"d<p<$x> p<$x>>", false},
		{"p<$x>", false},
		{"d<>", false},
		{"d<p<$x> p<$y> p<$y>>", true},
	}
	for _, c := range cases {
		if got := m.Accepts(hedge.MustParse(c.src)); got != c.want {
			t.Errorf("M0.Accepts(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPaperM0Computation(t *testing.T) {
	// The computation of d⟨p⟨x⟩p⟨y⟩⟩d⟨p⟨x⟩⟩ by M₀ has ceil q_d q_d.
	m := paperM0(t)
	det := m.Determinize()
	h := hedge.MustParse("d<p<$x> p<$y>> d<p<$x>>")
	run := det.DHA.Exec(h)
	if !run.Accepted {
		t.Fatal("expected acceptance")
	}
	for _, topState := range run.Top {
		set := det.SubsetOf(topState)
		if len(set) != 1 {
			t.Fatalf("top subset = %v, want a singleton {qd}", set)
		}
	}
}

func TestPaperM1(t *testing.T) {
	m := paperM1(t)
	// The paper executes M₁ on d⟨p⟨x⟩p⟨y⟩⟩ (no computation: y has no state)
	// and d⟨p⟨xx⟩p⟨xx⟩⟩ (accepted).
	if m.Accepts(hedge.MustParse("d<p<$x> p<$y>>")) {
		t.Fatal("M1 should reject d<p<$x> p<$y>>")
	}
	if !m.Accepts(hedge.MustParse("d<p<$x $x> p<$x $x>>")) {
		t.Fatal("M1 should accept d<p<$x $x> p<$x $x>>")
	}
	// Both computations of the second hedge exist: check the reachable set
	// of the second p node contains both qp1 and qp2.
	h := hedge.MustParse("d<p<$x $x> p<$x $x>>")
	run := m.Exec(h)
	secondP := h[0].Children[1]
	if got := len(run.Sets[secondP]); got != 2 {
		t.Fatalf("second p should reach 2 states, got %v", run.Sets[secondP])
	}
}

func TestTheorem1DeterminizeAgrees(t *testing.T) {
	for name, m := range map[string]*NHA{"M0": paperM0(t), "M1": paperM1(t)} {
		det := m.Determinize()
		rng := rand.New(rand.NewSource(42))
		cfg := hedge.RandConfig{
			Symbols: []string{"d", "p"}, Vars: []string{"x", "y"},
			MaxDepth: 4, MaxWidth: 3,
		}
		for i := 0; i < 400; i++ {
			h := hedge.Random(rng, cfg)
			if m.Accepts(h) != det.DHA.Accepts(h) {
				t.Fatalf("%s: NHA and determinized DHA disagree on %v", name, h)
			}
		}
	}
}

func TestDHACompleteAssignsEverywhere(t *testing.T) {
	det := paperM0(t).Determinize()
	c := det.DHA.Complete()
	rng := rand.New(rand.NewSource(7))
	cfg := hedge.RandConfig{
		Symbols: []string{"d", "p"}, Vars: []string{"x", "y"},
		MaxDepth: 4, MaxWidth: 3,
	}
	for i := 0; i < 200; i++ {
		h := hedge.Random(rng, cfg)
		run := c.Exec(h)
		if !run.Complete {
			t.Fatalf("complete DHA failed to assign a state in %v", h)
		}
		if run.Accepted != det.DHA.Accepts(h) {
			t.Fatalf("completion changed the language on %v", h)
		}
	}
}

func TestComplement(t *testing.T) {
	det := paperM0(t).Determinize()
	comp := det.DHA.Complement()
	rng := rand.New(rand.NewSource(9))
	cfg := hedge.RandConfig{
		Symbols: []string{"d", "p"}, Vars: []string{"x", "y"},
		MaxDepth: 4, MaxWidth: 3,
	}
	for i := 0; i < 200; i++ {
		h := hedge.Random(rng, cfg)
		if det.DHA.Accepts(h) == comp.Accepts(h) {
			t.Fatalf("complement agrees with original on %v", h)
		}
	}
}

func TestProductIntersectUnion(t *testing.T) {
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	// A: all top-level nodes are a (any children); B: exactly two top-level
	// nodes.
	ba := NewBuilder(names)
	ba.Iota("x", "qx")
	ba.MustRule("a", "qa", "(qa | qx)*")
	ba.MustFinal("qa*")
	a := ba.Build().Determinize().DHA

	bb := NewBuilder(names)
	bb.Iota("x", "px")
	bb.MustRule("a", "pa", "(pa | px)*")
	bb.MustFinal("(pa | px) (pa | px)")
	b := bb.Build().Determinize().DHA

	inter, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cfg := hedge.RandConfig{Symbols: []string{"a"}, Vars: []string{"x"}, MaxDepth: 3, MaxWidth: 3}
	for i := 0; i < 300; i++ {
		h := hedge.Random(rng, cfg)
		ia, ib := a.Accepts(h), b.Accepts(h)
		if inter.Accepts(h) != (ia && ib) {
			t.Fatalf("intersection wrong on %v (a=%v b=%v)", h, ia, ib)
		}
		if uni.Accepts(h) != (ia || ib) {
			t.Fatalf("union wrong on %v", h)
		}
	}
}

func TestEmptinessAndWitness(t *testing.T) {
	m := paperM0(t)
	if m.IsEmpty() {
		t.Fatal("M0 should be non-empty")
	}
	det := m.Determinize()
	w, ok := det.DHA.SomeHedge()
	if !ok {
		t.Fatal("SomeHedge found nothing")
	}
	if !m.Accepts(w) {
		t.Fatalf("witness %v not accepted", w)
	}

	// An automaton with unsatisfiable rules is empty... build one: a needs
	// a child state that nothing produces.
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("a", "qa", "qnever")
	b.MustFinal("qa qa*")
	empty := b.Build()
	if !empty.IsEmpty() {
		t.Fatal("unsatisfiable automaton should be empty")
	}
	if !empty.Determinize().DHA.IsEmpty() {
		t.Fatal("determinized unsatisfiable automaton should be empty")
	}
	if _, ok := empty.Determinize().DHA.SomeHedge(); ok {
		t.Fatal("SomeHedge on empty language")
	}
}

func TestEquivalent(t *testing.T) {
	m0 := paperM0(t)
	a := m0.Determinize().DHA
	b := m0.Determinize().DHA.Complete() // same language, different shape
	eq, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("equivalent automata reported different")
	}
	c := a.Complement()
	eq, err = Equivalent(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("automaton equivalent to its complement")
	}
}

func TestToNHARoundTrip(t *testing.T) {
	det := paperM0(t).Determinize()
	back := det.DHA.ToNHA()
	rng := rand.New(rand.NewSource(13))
	cfg := hedge.RandConfig{
		Symbols: []string{"d", "p"}, Vars: []string{"x", "y"},
		MaxDepth: 4, MaxWidth: 3,
	}
	for i := 0; i < 200; i++ {
		h := hedge.Random(rng, cfg)
		if det.DHA.Accepts(h) != back.Accepts(h) {
			t.Fatalf("ToNHA changed the language on %v", h)
		}
	}
}

func TestInhabitedStates(t *testing.T) {
	m := paperM0(t)
	inh := m.InhabitedStates()
	// qx, qy, qp1, qp2, qd are all inhabited.
	count := 0
	for _, b := range inh {
		if b {
			count++
		}
	}
	if count != m.NumStates {
		t.Fatalf("inhabited %d of %d states", count, m.NumStates)
	}
}

func TestEmptyHedgeAcceptance(t *testing.T) {
	m := paperM0(t) // F = qd* contains ε
	if !m.Accepts(nil) {
		t.Fatal("ε should be accepted by M0")
	}
	names := NewNames()
	names.Syms.Intern("a")
	names.Vars.Intern("x")
	b := NewBuilder(names)
	b.Iota("x", "qx")
	b.MustRule("a", "qa", "()")
	b.MustFinal("qa")
	m2 := b.Build()
	if m2.Accepts(nil) {
		t.Fatal("ε should be rejected when F = {qa}")
	}
	if !m2.Accepts(hedge.MustParse("a")) {
		t.Fatal("a should be accepted")
	}
}

func TestUnknownSymbolsRejected(t *testing.T) {
	m := paperM0(t)
	det := m.Determinize()
	h := hedge.Hedge{hedge.NewElem("zzz")}
	if det.DHA.Accepts(h) {
		t.Fatal("hedge with unknown symbol should be rejected")
	}
	if m.Accepts(h) {
		t.Fatal("NHA should also reject unknown symbols")
	}
}
