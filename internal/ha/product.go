package ha

import (
	"fmt"

	"xpe/internal/alphabet"
	"xpe/internal/sfa"
)

// NaryProduct builds the product of several complete(d) DHAs over the same
// Names, exploring only reachable tuple states. The final-state-sequence
// condition is acc(per-component acceptance). The returned Tuples interner
// maps product states back to component-state tuples.
//
// The match-identifying constructions of Section 8 run the input schema,
// the Theorem 3 marking automaton M↓e₁, and the component automata of a
// pointed hedge representation in lockstep; this product realizes that
// lockstep as a single automaton.
func NaryProduct(ds []*DHA, acc func(accepts []bool) bool) (*DHA, *alphabet.TupleInterner, error) {
	if len(ds) == 0 {
		return nil, nil, fmt.Errorf("ha: empty product")
	}
	names := ds[0].Names
	comps := make([]*DHA, len(ds))
	for i, d := range ds {
		if d.Names != names {
			return nil, nil, fmt.Errorf("ha: product of automata over different Names")
		}
		comps[i] = d.Complete()
	}
	k := len(comps)
	tuples := alphabet.NewTupleInterner()

	// Seed with ι tuples.
	numVars := names.Vars.Len()
	iota := make([]int, numVars)
	tup := make([]int, k)
	for v := 0; v < numVars; v++ {
		for i, c := range comps {
			tup[i] = c.Iota[v]
		}
		iota[v] = tuples.Intern(tup)
	}
	if numVars == 0 {
		// Ensure at least the all-sink tuple exists so exploration can run.
		for i, c := range comps {
			tup[i] = c.NumStates - 1 // Complete() appends the sink last
		}
		tuples.Intern(tup)
	}

	// Horizontal exploration to a fixpoint: the tuple alphabet may grow
	// while horizontal product DFAs are explored.
	numSyms := names.Syms.Len()
	for {
		before := tuples.Len()
		for sym := 0; sym < numSyms; sym++ {
			exploreTupleHorizontal(comps, sym, tuples)
		}
		if tuples.Len() == before {
			break
		}
	}

	p := &DHA{
		Names:     names,
		NumStates: tuples.Len(),
		Iota:      iota,
		Horiz:     make([]*Horiz, numSyms),
	}
	for sym := 0; sym < numSyms; sym++ {
		p.Horiz[sym] = buildTupleHorizontal(comps, sym, tuples)
	}
	p.Final = buildTupleFinal(comps, tuples, acc)
	return p, tuples, nil
}

// stepTuple advances the per-component horizontal DFA states on a product
// symbol.
func stepTuple(comps []*DHA, sym int, hstates []int, tuples *alphabet.TupleInterner, symbol int) []int {
	qs := tuples.Tuple(symbol)
	next := make([]int, len(comps))
	for i, c := range comps {
		next[i] = c.Horiz[sym].DFA.Step(hstates[i], qs[i])
	}
	return next
}

func outTuple(comps []*DHA, sym int, hstates []int) []int {
	out := make([]int, len(comps))
	for i, c := range comps {
		out[i] = c.Horiz[sym].Out[hstates[i]]
	}
	return out
}

func exploreTupleHorizontal(comps []*DHA, sym int, tuples *alphabet.TupleInterner) {
	hseen := alphabet.NewTupleInterner()
	start := make([]int, len(comps))
	for i, c := range comps {
		start[i] = c.Horiz[sym].DFA.Start
	}
	queue := [][]int{start}
	hseen.Intern(start)
	tuples.Intern(outTuple(comps, sym, start))
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for id := 0; id < tuples.Len(); id++ {
			next := stepTuple(comps, sym, cur, tuples, id)
			tuples.Intern(outTuple(comps, sym, next))
			if hseen.Lookup(next) == -1 {
				hseen.Intern(next)
				queue = append(queue, next)
			}
		}
	}
}

func buildTupleHorizontal(comps []*DHA, sym int, tuples *alphabet.TupleInterner) *Horiz {
	numQ := tuples.Len()
	dfa := sfa.NewDFA(numQ)
	hids := alphabet.NewTupleInterner()
	var out []int
	var pending [][]int
	get := func(hs []int) int {
		if id := hids.Lookup(hs); id != -1 {
			return id
		}
		id := dfa.AddState(false)
		hids.Intern(hs)
		out = append(out, tuples.Lookup(outTuple(comps, sym, hs)))
		pending = append(pending, append([]int(nil), hs...))
		return id
	}
	start := make([]int, len(comps))
	for i, c := range comps {
		start[i] = c.Horiz[sym].DFA.Start
	}
	dfa.Start = get(start)
	for i := 0; i < len(pending); i++ {
		cur := pending[i]
		from := i
		for id := 0; id < numQ; id++ {
			dfa.SetTrans(from, id, get(stepTuple(comps, sym, cur, tuples, id)))
		}
	}
	return &Horiz{DFA: dfa, Out: out}
}

func buildTupleFinal(comps []*DHA, tuples *alphabet.TupleInterner, acc func([]bool) bool) *sfa.DFA {
	numQ := tuples.Len()
	dfa := sfa.NewDFA(numQ)
	hids := alphabet.NewTupleInterner()
	var pending [][]int
	accepts := func(fs []int) bool {
		bits := make([]bool, len(comps))
		for i, c := range comps {
			bits[i] = c.Final.Accepting(fs[i])
		}
		return acc(bits)
	}
	get := func(fs []int) int {
		if id := hids.Lookup(fs); id != -1 {
			return id
		}
		id := dfa.AddState(accepts(fs))
		hids.Intern(fs)
		pending = append(pending, append([]int(nil), fs...))
		return id
	}
	start := make([]int, len(comps))
	for i, c := range comps {
		start[i] = c.Final.Start
	}
	dfa.Start = get(start)
	for i := 0; i < len(pending); i++ {
		cur := pending[i]
		from := i
		for id := 0; id < numQ; id++ {
			qs := tuples.Tuple(id)
			next := make([]int, len(comps))
			for j, c := range comps {
				next[j] = c.Final.Step(cur[j], qs[j])
			}
			dfa.SetTrans(from, id, get(next))
		}
	}
	return dfa
}

// MarkChildren implements the Theorem 3 state augmentation: given a DHA d,
// it returns a complete DHA whose states are pairs (q, bit) — encoded as
// q·2+bit — where bit records whether the node's child-state sequence is in
// d.Final, i.e. whether the node's subhedge is in L(d). The returned
// automaton accepts every hedge over the interned alphabet (its final set
// is the lifted original — callers wanting "accept everything" per Theorem
// 3 can ignore acceptance); marked[s] reports the bit of encoded state s.
func MarkChildren(d *DHA) (*DHA, []bool) {
	c := d.Complete()
	fin := c.Final // complete DFA over c's states
	numQ := c.NumStates * 2
	m := &DHA{
		Names:     c.Names,
		NumStates: numQ,
		Iota:      make([]int, len(c.Iota)),
		Horiz:     make([]*Horiz, len(c.Horiz)),
	}
	for v, q := range c.Iota {
		m.Iota[v] = q * 2 // leaves are never marked (they have no children)
	}
	for sym, hz := range c.Horiz {
		// Product of the horizontal DFA with the final DFA, both reading
		// the projection of (q, bit) symbols to q.
		nf := fin.NumStates
		pair := func(h, f int) int { return h*nf + f }
		dfa := sfa.NewDFA(numQ)
		out := make([]int, hz.DFA.NumStates*nf)
		for h := 0; h < hz.DFA.NumStates; h++ {
			for f := 0; f < nf; f++ {
				dfa.AddState(false)
				bit := 0
				if fin.Accept[f] {
					bit = 1
				}
				out[pair(h, f)] = hz.Out[h]*2 + bit
			}
		}
		dfa.Start = pair(hz.DFA.Start, fin.Start)
		for h := 0; h < hz.DFA.NumStates; h++ {
			for f := 0; f < nf; f++ {
				for q := 0; q < c.NumStates; q++ {
					to := pair(hz.DFA.Step(h, q), fin.Step(f, q))
					dfa.SetTrans(pair(h, f), q*2, to)
					dfa.SetTrans(pair(h, f), q*2+1, to)
				}
			}
		}
		m.Horiz[sym] = &Horiz{DFA: dfa, Out: out}
	}
	// Final: the lifted original final set (projection to q).
	m.Final = fin.ToNFA().MapSymbols(numQ, func(q int) []int {
		return []int{q * 2, q*2 + 1}
	}).Determinize().Complete()
	marked := make([]bool, numQ)
	for s := 1; s < numQ; s += 2 {
		marked[s] = true
	}
	return m, marked
}
