package ha

import (
	"sync"

	"xpe/internal/alphabet"
	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// Lazy determinization — the pay-as-you-go reading of Theorem 1.
//
// Determinize builds every reachable subset up front, which is exponential
// in the worst case (the C1 caveat). LazyDet defers the subset construction:
// DHA states (NHA-state subsets), horizontal-DFA states, and final-DFA
// states are materialized only when an input actually demands them, so the
// states built are bounded by the diversity of the input, not by 2^|Q|.
// Identity is preserved across calls — a subset seen twice gets the same id
// — so lazily computed states are exactly the reachable fragment of the
// eager construction and membership agrees with Determinize on every hedge
// (the FuzzLazyVsEagerDeterminize target pins this).
//
// All stepping methods share one mutex, so a LazyDet may back a compiled
// query shared by concurrent evaluators (the same discipline as the
// mirror-automaton memo in internal/core).

// DefaultLazyTransitionBudget bounds the cached transitions of a LazyDet
// when LazyOptions.TransitionBudget is zero.
const DefaultLazyTransitionBudget = 1 << 16

// LazyOptions configures LazyDeterminize.
type LazyOptions struct {
	// TransitionBudget caps the number of cached DFA transitions across the
	// lazy horizontal and final structures. When the cache would exceed the
	// budget it is flushed: every transition map is dropped, but states and
	// their subsets are kept, so state ids held by an in-flight evaluation
	// stay valid and future steps recompute transitions on demand. Zero
	// means DefaultLazyTransitionBudget; negative disables the bound.
	TransitionBudget int
}

// LazyStats is a snapshot of a LazyDet's counters.
type LazyStats struct {
	Subsets     int64 // distinct NHA-state subsets interned (= DHA states built)
	StatesBuilt int64 // horizontal + final DFA states materialized
	Hits        int64 // cached-transition hits
	Misses      int64 // transitions computed on demand
	Evictions   int64 // cache flushes forced by the transition budget
}

// Add returns the field-wise sum of two snapshots.
func (s LazyStats) Add(o LazyStats) LazyStats {
	return LazyStats{
		Subsets:     s.Subsets + o.Subsets,
		StatesBuilt: s.StatesBuilt + o.StatesBuilt,
		Hits:        s.Hits + o.Hits,
		Misses:      s.Misses + o.Misses,
		Evictions:   s.Evictions + o.Evictions,
	}
}

// Sub returns the field-wise difference s - o.
func (s LazyStats) Sub(o LazyStats) LazyStats {
	return LazyStats{
		Subsets:     s.Subsets - o.Subsets,
		StatesBuilt: s.StatesBuilt - o.StatesBuilt,
		Hits:        s.Hits - o.Hits,
		Misses:      s.Misses - o.Misses,
		Evictions:   s.Evictions - o.Evictions,
	}
}

// lazyDFA is the shared memo shape of every lazily determinized machine: a
// growing table of NFA-state sets with dense ids and per-state transition
// maps keyed by subset-id symbols. States are append-only; only trans is
// dropped on a budget flush.
type lazyDFA struct {
	sets  [][]int
	ids   map[string]int
	trans []map[int]int
	start int
}

func (d *lazyDFA) intern(set []int, l *LazyDet, onNew func(id int, set []int)) int {
	k := setKeyLazy(set)
	if id, ok := d.ids[k]; ok {
		return id
	}
	id := len(d.sets)
	d.ids[k] = id
	d.sets = append(d.sets, set)
	d.trans = append(d.trans, nil)
	l.stats.StatesBuilt++
	if onNew != nil {
		onNew(id, set)
	}
	return id
}

func setKeyLazy(set []int) string {
	b := make([]byte, 0, len(set)*4)
	for _, s := range set {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return string(b)
}

// lazySym is the on-demand horizontal structure for one symbol: the merged
// rule NFA with its accept-state→result mapping, determinized state by
// state as child sequences are read.
type lazySym struct {
	nfa     *sfa.NFA
	results map[int]int
	dfa     lazyDFA
	out     []int // DFA state → result subset id
}

// lazyFinal is the on-demand membership DFA over subset-id symbols for a
// final NFA (or its reverse): it accepts a subset word S₁…S_k iff some
// q₁…q_k with qᵢ ∈ Sᵢ is accepted.
type lazyFinal struct {
	nfa    *sfa.NFA
	dfa    lazyDFA
	accept []bool
}

// LazyDet is an on-demand determinization of an NHA behind the same
// stepping surface the evaluator uses on an eager Det: subset-id states,
// horizontal runs per symbol, and forward/backward final membership.
type LazyDet struct {
	Names *Names

	mu      sync.Mutex
	subsets *alphabet.TupleInterner
	sink    int
	iota    []int
	bySym   []*lazySym // symbol id → horizontal structure (nil = no rules)
	fwd     lazyFinal
	bwd     lazyFinal

	budget      int // cached-transition cap (<0 = unbounded)
	cachedTrans int
	stats       LazyStats
	flushed     LazyStats // cursor for FlushDelta
}

// LazyDeterminize prepares the on-demand subset construction. It does no
// determinization work beyond merging the per-symbol rule NFAs (linear in
// the NHA size); states appear as inputs demand them.
func (n *NHA) LazyDeterminize(opts LazyOptions) *LazyDet {
	budget := opts.TransitionBudget
	if budget == 0 {
		budget = DefaultLazyTransitionBudget
	}
	l := &LazyDet{
		Names:   n.Names,
		subsets: alphabet.NewTupleInterner(),
		budget:  budget,
		bySym:   make([]*lazySym, n.Names.Syms.Len()),
	}
	l.sink = l.subsets.Intern(nil)

	for _, rule := range n.Rules {
		if rule.Sym < 0 || rule.Sym >= len(l.bySym) {
			continue
		}
		c := l.bySym[rule.Sym]
		if c == nil {
			c = &lazySym{
				nfa:     sfa.NewNFA(n.NumStates),
				results: map[int]int{},
				dfa:     lazyDFA{ids: map[string]int{}},
			}
			l.bySym[rule.Sym] = c
		}
		offset := c.nfa.NumStates
		for i := 0; i < rule.Lang.NumStates; i++ {
			c.nfa.AddState(false)
		}
		for s := 0; s < rule.Lang.NumStates; s++ {
			for sym, ts := range rule.Lang.Trans[s] {
				for _, t := range ts {
					c.nfa.AddTrans(offset+s, sym, offset+t)
				}
			}
			for _, t := range rule.Lang.Eps[s] {
				c.nfa.AddEps(offset+s, offset+t)
			}
			if rule.Lang.Accept[s] {
				c.results[offset+s] = rule.Result
			}
		}
		for _, s := range rule.Lang.Start {
			c.nfa.MarkStart(offset + s)
		}
	}

	// ι images and the start states of every machine are materialized
	// eagerly: they are O(|NHA|) and every run needs them.
	vars := n.Names.Vars.Len()
	l.iota = make([]int, vars)
	for v := 0; v < vars; v++ {
		var qs []int
		if v < len(n.Iota) {
			qs = normalizeSet(n.Iota[v])
		}
		l.iota[v] = l.internSubset(qs)
	}
	for _, c := range l.bySym {
		if c == nil {
			continue
		}
		start := c.nfa.EpsClosure(c.nfa.Start)
		c.dfa.start = c.dfa.intern(start, l, func(id int, set []int) {
			c.out = append(c.out, l.internSubset(resultSubset(set, c.results)))
		})
	}
	l.fwd = lazyFinal{nfa: n.Final, dfa: lazyDFA{ids: map[string]int{}}}
	l.bwd = lazyFinal{nfa: n.Final.Reverse(), dfa: lazyDFA{ids: map[string]int{}}}
	l.initFinal(&l.fwd)
	l.initFinal(&l.bwd)
	return l
}

func (l *LazyDet) initFinal(f *lazyFinal) {
	start := f.nfa.EpsClosure(f.nfa.Start)
	f.dfa.start = f.dfa.intern(start, l, func(id int, set []int) {
		f.accept = append(f.accept, anyAccept(f.nfa, set))
	})
}

func anyAccept(nfa *sfa.NFA, set []int) bool {
	for _, s := range set {
		if nfa.Accept[s] {
			return true
		}
	}
	return false
}

func (l *LazyDet) internSubset(qs []int) int {
	before := l.subsets.Len()
	id := l.subsets.Intern(qs)
	if l.subsets.Len() > before {
		l.stats.Subsets++
	}
	return id
}

// chargeTrans accounts one freshly cached transition and flushes every
// transition map when the budget is exceeded. States (and their subsets)
// survive a flush, so ids held by callers stay valid.
func (l *LazyDet) chargeTrans() {
	l.cachedTrans++
	if l.budget < 0 || l.cachedTrans <= l.budget {
		return
	}
	for _, c := range l.bySym {
		if c == nil {
			continue
		}
		for i := range c.dfa.trans {
			c.dfa.trans[i] = nil
		}
	}
	for i := range l.fwd.dfa.trans {
		l.fwd.dfa.trans[i] = nil
	}
	for i := range l.bwd.dfa.trans {
		l.bwd.dfa.trans[i] = nil
	}
	l.cachedTrans = 0
	l.stats.Evictions++
}

// Sink returns the subset id of the empty subset — the state the complete
// automaton assigns to nodes outside the interned alphabet.
func (l *LazyDet) Sink() int { return l.sink }

// IotaState returns ι(v) as a subset id (the sink when v is undefined).
func (l *LazyDet) IotaState(v int) int {
	if v >= 0 && v < len(l.iota) {
		return l.iota[v]
	}
	return l.sink
}

// SubsetOf returns the NHA state subset represented by subset id q. The
// returned slice must not be modified.
func (l *LazyDet) SubsetOf(q int) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.subsets.Tuple(q)
}

// HorizStart returns the horizontal start state for sym, or -1 when the
// symbol is outside the construction (callers treat -1 as "result is the
// sink", matching the eager automaton completed over the alphabet).
func (l *LazyDet) HorizStart(sym int) int {
	if sym < 0 || sym >= len(l.bySym) || l.bySym[sym] == nil {
		return -1
	}
	return l.bySym[sym].dfa.start
}

// HorizStep advances the horizontal run of sym from state st on the child
// subset id q, materializing the successor on demand. The lazy horizontal
// machines are total: Step never returns a dead state.
func (l *LazyDet) HorizStep(sym, st, q int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.bySym[sym]
	if t, ok := c.dfa.trans[st][q]; ok {
		l.stats.Hits++
		return t
	}
	l.stats.Misses++
	next := stepNFAOnSubset(c.nfa, c.dfa.sets[st], l.subsets.Tuple(q))
	to := c.dfa.intern(next, l, func(id int, set []int) {
		c.out = append(c.out, l.internSubset(resultSubset(set, c.results)))
	})
	if c.dfa.trans[st] == nil {
		c.dfa.trans[st] = make(map[int]int)
	}
	c.dfa.trans[st][q] = to
	l.chargeTrans()
	return to
}

// HorizOut returns the result subset id at horizontal state st of sym.
func (l *LazyDet) HorizOut(sym, st int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bySym[sym].out[st]
}

// FwdStart returns the start state of the forward final-membership run.
func (l *LazyDet) FwdStart() int { return l.fwd.dfa.start }

// FwdStep advances the forward final run on subset id q.
func (l *LazyDet) FwdStep(st, q int) int { return l.finalStep(&l.fwd, st, q) }

// FwdAccepting reports whether forward final state st is accepting.
func (l *LazyDet) FwdAccepting(st int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fwd.accept[st]
}

// BwdStart returns the start state of the reversed final-membership run.
func (l *LazyDet) BwdStart() int { return l.bwd.dfa.start }

// BwdStep advances the reversed final run on subset id q.
func (l *LazyDet) BwdStep(st, q int) int { return l.finalStep(&l.bwd, st, q) }

// BwdAccepting reports whether reversed final state st is accepting.
func (l *LazyDet) BwdAccepting(st int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bwd.accept[st]
}

func (l *LazyDet) finalStep(f *lazyFinal, st, q int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t, ok := f.dfa.trans[st][q]; ok {
		l.stats.Hits++
		return t
	}
	l.stats.Misses++
	next := stepNFAOnSubset(f.nfa, f.dfa.sets[st], l.subsets.Tuple(q))
	to := f.dfa.intern(next, l, func(id int, set []int) {
		f.accept = append(f.accept, anyAccept(f.nfa, set))
	})
	if f.dfa.trans[st] == nil {
		f.dfa.trans[st] = make(map[int]int)
	}
	f.dfa.trans[st][q] = to
	l.chargeTrans()
	return to
}

// Stats returns the cumulative counters.
func (l *LazyDet) Stats() LazyStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// FlushDelta returns the counters accumulated since the previous FlushDelta
// call and advances the cursor. Metrics sinks use this to fold lazy work
// into per-evaluation flushes without double counting.
func (l *LazyDet) FlushDelta() LazyStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.stats.Sub(l.flushed)
	l.flushed = l.stats
	return d
}

// Accepts reports whether the lazily determinized automaton accepts the
// hedge — the Definition 5 run, materializing states on demand. Agreement
// with NHA.Accepts and with the eager Determinize is the differential-fuzz
// property.
func (l *LazyDet) Accepts(h hedge.Hedge) bool {
	top := l.execHedge(h)
	st := l.FwdStart()
	for _, q := range top {
		st = l.FwdStep(st, q)
	}
	return l.FwdAccepting(st)
}

func (l *LazyDet) execHedge(h hedge.Hedge) []int {
	states := make([]int, len(h))
	for i, n := range h {
		states[i] = l.execNode(n)
	}
	return states
}

func (l *LazyDet) execNode(n *hedge.Node) int {
	switch n.Kind {
	case hedge.Var:
		if v := l.Names.Vars.Lookup(n.Name); v != alphabet.None {
			return l.IotaState(v)
		}
		return l.sink
	case hedge.Elem:
		children := l.execHedge(n.Children)
		sym := l.Names.Syms.Lookup(n.Name)
		st := l.HorizStart(sym)
		if st < 0 {
			return l.sink
		}
		for _, q := range children {
			st = l.HorizStep(sym, st, q)
		}
		return l.HorizOut(sym, st)
	default:
		if v := l.Names.Vars.Lookup(SubstVarName(n.Name)); v != alphabet.None {
			return l.IotaState(v)
		}
		return l.sink
	}
}
