package ha

import (
	"xpe/internal/hedge"
	"xpe/internal/sfa"
)

// Ambiguity (Section 9 of the paper). The paper's future-work section
// proposes adding variables to hedge regular expressions and notes that
// "variables can be safely introduced to unambiguous expressions" — an
// expression is ambiguous when some hedge has more than one way to match.
// At the automaton level this is: some accepted hedge has two distinct
// successful computations. That property is decidable by a self-product
// construction that tracks whether the two simulated computations have
// diverged anywhere.
//
// States of the pair automaton are (q₁, q₂, d) with d = 1 iff the two
// computations differ at or below the node: d = [q₁ ≠ q₂] ∨ (some child
// has d = 1). The automaton accepts hedges whose both projections are
// accepted and whose top level contains a d = 1 state; the original
// automaton is ambiguous iff that language is non-empty.

// Ambiguous reports whether some hedge has two distinct successful
// computations.
func (n *NHA) Ambiguous() bool {
	return !n.pairAutomaton().IsEmpty()
}

// AmbiguityWitness returns a hedge with two distinct successful
// computations, or ok=false when the automaton is unambiguous. The pair
// automaton is determinized to extract the witness, which can be expensive
// for large automata.
func (n *NHA) AmbiguityWitness() (hedge.Hedge, bool) {
	pair := n.pairAutomaton()
	if pair.IsEmpty() {
		return nil, false
	}
	return pair.Determinize().DHA.SomeHedge()
}

// pairID encodes (q1, q2, d) over N original states.
func pairID(n, q1, q2, d int) int { return (q1*n+q2)*2 + d }

// pairAutomaton builds the self-product with difference tracking.
func (n *NHA) pairAutomaton() *NHA {
	numQ := n.NumStates
	pairStates := numQ * numQ * 2
	p := NewNHA(n.Names)
	p.NumStates = pairStates

	// Leaves: every pair of ι choices; d records whether they differ.
	p.Iota = make([][]int, len(n.Iota))
	for v, qs := range n.Iota {
		for _, q1 := range qs {
			for _, q2 := range qs {
				d := 0
				if q1 != q2 {
					d = 1
				}
				p.Iota[v] = append(p.Iota[v], pairID(numQ, q1, q2, d))
			}
		}
	}

	// lift maps a language over states to a language over pair symbols by
	// the given projection.
	lift := func(lang *sfa.NFA, project func(q int) []int) *sfa.NFA {
		out := lang.MapSymbols(pairStates, project)
		out.GrowAlphabet(pairStates)
		return out
	}
	proj1 := func(q1 int) []int {
		syms := make([]int, 0, numQ*2)
		for q2 := 0; q2 < numQ; q2++ {
			syms = append(syms, pairID(numQ, q1, q2, 0), pairID(numQ, q1, q2, 1))
		}
		return syms
	}
	proj2 := func(q2 int) []int {
		syms := make([]int, 0, numQ*2)
		for q1 := 0; q1 < numQ; q1++ {
			syms = append(syms, pairID(numQ, q1, q2, 0), pairID(numQ, q1, q2, 1))
		}
		return syms
	}
	// bitFilter restricts a pair language by the d-bits of its symbols:
	// all-zero (wantOne=false) or at-least-one-one (wantOne=true).
	bitFilter := func(lang *sfa.NFA, wantOne bool) *sfa.NFA {
		flag := sfa.NewDFA(pairStates)
		s0 := flag.AddState(!wantOne)
		s1 := flag.AddState(wantOne)
		flag.Start = s0
		for sym := 0; sym < pairStates; sym++ {
			if sym%2 == 1 {
				flag.SetTrans(s0, sym, s1)
			} else {
				flag.SetTrans(s0, sym, s0)
			}
			flag.SetTrans(s1, sym, s1)
		}
		if !wantOne {
			// All-zero words: stay in s0; s1 is a trap we never accept.
			flag.Accept[s1] = false
		}
		return sfa.IntersectNFA(lang, flag.ToNFA())
	}

	for i := range n.Rules {
		for j := range n.Rules {
			r1, r2 := &n.Rules[i], &n.Rules[j]
			if r1.Sym != r2.Sym {
				continue
			}
			base := sfa.IntersectNFA(lift(r1.Lang, proj1), lift(r2.Lang, proj2))
			if r1.Result != r2.Result {
				p.AddRule(r1.Sym, pairID(numQ, r1.Result, r2.Result, 1), base)
				continue
			}
			p.AddRule(r1.Sym, pairID(numQ, r1.Result, r2.Result, 0), bitFilter(base, false))
			p.AddRule(r1.Sym, pairID(numQ, r1.Result, r2.Result, 1), bitFilter(base, true))
		}
	}

	// Final: both projections accepted and a difference present somewhere.
	p.Final = bitFilter(sfa.IntersectNFA(lift(n.Final, proj1), lift(n.Final, proj2)), true)
	return p
}

// UnambiguousOn reports whether the automaton has at most one successful
// computation for the specific hedge h (a cheaper per-document check used
// to validate variable bindings).
func (n *NHA) UnambiguousOn(h hedge.Hedge) bool {
	if !n.Accepts(h) {
		return true
	}
	return !n.pairAutomaton().Accepts(h)
}
