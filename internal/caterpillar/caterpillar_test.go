package caterpillar

import (
	"math/rand"
	"testing"

	"xpe/internal/hedge"
	"xpe/internal/xpath"
)

func sel(t *testing.T, src string, h hedge.Hedge) map[*hedge.Node]bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	out := map[*hedge.Node]bool{}
	for _, n := range e.Select(NewDoc(h)) {
		out[n] = true
	}
	return out
}

func TestLabelTest(t *testing.T) {
	h := hedge.MustParse("doc<figure table figure>")
	got := sel(t, "figure", h)
	if len(got) != 2 {
		t.Fatalf("got %d figures", len(got))
	}
	if got[h[0]] {
		t.Fatal("doc must not match")
	}
}

func TestSiblingWalk(t *testing.T) {
	// "figure right table": start at a figure, step right, see a table —
	// the introduction's sibling query as a caterpillar.
	h := hedge.MustParse("doc<figure table figure note figure>")
	got := sel(t, "figure right table", h)
	if len(got) != 1 || !got[h[0].Children[0]] {
		t.Fatalf("got %v", got)
	}
}

func TestAncestorWalk(t *testing.T) {
	// All ancestors are sections until the root: figure (up section)* up
	// doc isroot.
	h := hedge.MustParse("doc<section<figure> table<figure>>")
	got := sel(t, "figure up section up doc isroot", h)
	if len(got) != 1 || !got[h[0].Children[0].Children[0]] {
		t.Fatalf("got %v", got)
	}
	got = sel(t, "figure (up section)* up doc isroot", h)
	if len(got) != 1 {
		t.Fatalf("starred walk got %v", got)
	}
}

func TestPositionAndLeafTests(t *testing.T) {
	h := hedge.MustParse("doc<a b c>")
	if got := sel(t, "isfirst a", h); len(got) != 1 || !got[h[0].Children[0]] {
		t.Fatalf("isfirst got %v", got)
	}
	if got := sel(t, "islast c", h); len(got) != 1 || !got[h[0].Children[2]] {
		t.Fatalf("islast got %v", got)
	}
	leaves := sel(t, "isleaf", h)
	if len(leaves) != 3 {
		t.Fatalf("isleaf got %d", len(leaves))
	}
	if got := sel(t, "isroot", h); len(got) != 1 || !got[h[0]] {
		t.Fatalf("isroot got %v", got)
	}
}

func TestDownWalk(t *testing.T) {
	// down moves to the first child.
	h := hedge.MustParse("doc<a<b c> d>")
	got := sel(t, "doc down a down b", h)
	if len(got) != 1 || !got[h[0]] {
		t.Fatalf("got %v", got)
	}
	if got := sel(t, "doc down d", h); len(got) != 0 {
		t.Fatal("down must reach the FIRST child only")
	}
}

func TestTextTest(t *testing.T) {
	h := hedge.MustParse("doc<para<$x>>")
	got := sel(t, "para down text", h)
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

// TestAgainstXPathSiblingQuery cross-checks the caterpillar sibling walk
// against the XPath engine on random documents.
func TestAgainstXPathSiblingQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := hedge.RandConfig{Symbols: []string{"figure", "table", "doc"}, Vars: nil, MaxDepth: 4, MaxWidth: 4}
	cat := MustParse("figure right table")
	xp := xpath.MustParse("//figure[following-sibling::*[1][self::table]]")
	for i := 0; i < 150; i++ {
		h := hedge.Random(rng, cfg)
		want := map[*hedge.Node]bool{}
		for _, n := range xp.Select(xpath.NewDoc(h)) {
			want[n] = true
		}
		got := map[*hedge.Node]bool{}
		for _, n := range cat.Select(NewDoc(h)) {
			got[n] = true
		}
		h.Visit(func(p hedge.Path, n *hedge.Node) bool {
			if got[n] != want[n] {
				t.Fatalf("disagreement at %v in %q: cat=%v xpath=%v", p, h, got[n], want[n])
			}
			return true
		})
	}
}

func TestEmptyAndErrors(t *testing.T) {
	if _, err := Parse("("); err == nil {
		t.Fatal("bad syntax accepted")
	}
	e := MustParse("figure")
	if got := e.Select(NewDoc(nil)); len(got) != 0 {
		t.Fatal("empty document should select nothing")
	}
}
