// Package caterpillar implements caterpillar expressions, the context
// specification technique of Brüggemann-Klein and Wood that the paper's
// related-work section (§2) compares against: regular expressions over
// tree walks. A caterpillar atom either moves (up, down = first child,
// left, right) or tests the current node (isroot, isleaf, isfirst, islast,
// a label name, or text). A node is selected when some walk starting at it
// spells a word of the expression's language.
//
// Caterpillars express many sibling- and ancestor-sensitive conditions
// (e.g. "figure directly followed by a table" is `figure right table`) but
// are incomparable with the paper's formalism in general; the package
// exists as the third baseline of the E5 experiment family.
//
// Syntax: the sre regular-expression syntax whose symbols are the keywords
// up, down, left, right, isroot, isleaf, isfirst, islast, text, or any
// other name (a label test; quote labels colliding with keywords).
package caterpillar

import (
	"fmt"

	"xpe/internal/alphabet"
	"xpe/internal/hedge"
	"xpe/internal/sfa"
	"xpe/internal/sre"
)

// Expr is a compiled caterpillar expression.
type Expr struct {
	src  string
	in   *alphabet.Interner
	nfa  *sfa.NFA
	atom []atom // symbol id → atom meaning
}

type atomKind int

const (
	moveUp atomKind = iota
	moveDown
	moveLeft
	moveRight
	testRoot
	testLeaf
	testFirst
	testLast
	testText
	testLabel
)

type atom struct {
	kind  atomKind
	label string // testLabel
}

var keywords = map[string]atomKind{
	"up": moveUp, "down": moveDown, "left": moveLeft, "right": moveRight,
	"isroot": testRoot, "isleaf": testLeaf, "isfirst": testFirst,
	"islast": testLast, "text": testText,
}

// Parse compiles a caterpillar expression.
func Parse(src string) (*Expr, error) {
	e, err := sre.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, n := range e.SymbolNames() {
		if n == "" {
			return nil, fmt.Errorf("caterpillar: empty atom")
		}
	}
	in := alphabet.NewInterner()
	nfa := e.CompileNFA(in)
	atoms := make([]atom, in.Len())
	for sym := 0; sym < in.Len(); sym++ {
		name := in.Name(sym)
		if k, ok := keywords[name]; ok {
			atoms[sym] = atom{kind: k}
		} else {
			atoms[sym] = atom{kind: testLabel, label: name}
		}
	}
	// '.' (Any) is not meaningful for walks; sre expands it over interned
	// symbols, which is fine.
	return &Expr{src: src, in: in, nfa: nfa, atom: atoms}, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source expression.
func (e *Expr) String() string { return e.src }

// Doc indexes a hedge for walking.
type Doc struct {
	nodes   []*hedge.Node
	idx     map[*hedge.Node]int
	parent  []int // node index → parent index (-1 = top level)
	pos     []int // node index → position among siblings
	sibs    [][]*hedge.Node
	sibList []int // node index → index into sibs
}

// NewDoc indexes h.
func NewDoc(h hedge.Hedge) *Doc {
	d := &Doc{idx: map[*hedge.Node]int{}}
	var rec func(h hedge.Hedge, parent int)
	rec = func(h hedge.Hedge, parent int) {
		listID := len(d.sibs)
		d.sibs = append(d.sibs, h)
		for i, n := range h {
			id := len(d.nodes)
			d.nodes = append(d.nodes, n)
			d.idx[n] = id
			d.parent = append(d.parent, parent)
			d.pos = append(d.pos, i)
			d.sibList = append(d.sibList, listID)
			if n.Kind == hedge.Elem {
				rec(n.Children, id)
			}
		}
	}
	rec(h, -1)
	return d
}

// Select returns the nodes from which some walk matches the expression, in
// document order. The computation is a backward reachability over the
// product of the expression NFA and the document graph: O(|NFA| · nodes ·
// alphabet).
func (e *Expr) Select(d *Doc) []*hedge.Node {
	numN := len(d.nodes)
	numQ := e.nfa.NumStates
	if numN == 0 || numQ == 0 {
		return nil
	}
	// good[q][n]: from NFA state q at node n, some suffix walk reaches an
	// accepting NFA state. Computed as a fixpoint from accepting states.
	good := make([][]bool, numQ)
	for q := range good {
		good[q] = make([]bool, numN)
	}
	type cfg struct{ q, n int }
	var queue []cfg
	mark := func(q, n int) {
		if !good[q][n] {
			good[q][n] = true
			queue = append(queue, cfg{q, n})
		}
	}
	// ε-closure in reverse: if q' good at n and q -ε-> q', then q good.
	// Build reverse edge lists once.
	revEps := make([][]int, numQ)
	type symEdge struct{ from, sym int }
	revSym := make([][]symEdge, numQ)
	for q := 0; q < numQ; q++ {
		for _, t := range e.nfa.Eps[q] {
			revEps[t] = append(revEps[t], q)
		}
		for sym, ts := range e.nfa.Trans[q] {
			for _, t := range ts {
				revSym[t] = append(revSym[t], symEdge{q, sym})
			}
		}
	}
	for q := 0; q < numQ; q++ {
		if e.nfa.Accept[q] {
			for n := 0; n < numN; n++ {
				mark(q, n)
			}
		}
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, q := range revEps[c.q] {
			mark(q, c.n)
		}
		for _, edge := range revSym[c.q] {
			// The atom takes some node m to c.n (moves) or stays (tests).
			for _, m := range e.preimages(d, edge.sym, c.n) {
				mark(edge.from, m)
			}
		}
	}
	var out []*hedge.Node
	starts := e.nfa.EpsClosure(e.nfa.Start)
	for n := 0; n < numN; n++ {
		for _, q := range starts {
			if good[q][n] {
				out = append(out, d.nodes[n])
				break
			}
		}
	}
	return out
}

// preimages returns the nodes m such that executing the atom at m lands on
// node n (for tests: m = n when the test holds).
func (e *Expr) preimages(d *Doc, sym, n int) []int {
	a := e.atom[sym]
	node := d.nodes[n]
	switch a.kind {
	case moveUp:
		// m's parent is n: preimages = children of n.
		if node.Kind != hedge.Elem {
			return nil
		}
		out := make([]int, 0, len(node.Children))
		for _, c := range node.Children {
			out = append(out, d.idx[c])
		}
		return out
	case moveDown:
		// down goes to the FIRST child: preimage is the parent, only if n
		// is its first child.
		if d.pos[n] == 0 && d.parent[n] >= 0 {
			return []int{d.parent[n]}
		}
		return nil
	case moveLeft:
		// m's left neighbour... left moves to the previous sibling, so the
		// preimage is the next sibling.
		sibs := d.sibs[d.sibList[n]]
		if d.pos[n]+1 < len(sibs) {
			return []int{d.idx[sibs[d.pos[n]+1]]}
		}
		return nil
	case moveRight:
		sibs := d.sibs[d.sibList[n]]
		if d.pos[n] > 0 {
			return []int{d.idx[sibs[d.pos[n]-1]]}
		}
		return nil
	case testRoot:
		if d.parent[n] == -1 {
			return []int{n}
		}
		return nil
	case testLeaf:
		if node.Kind != hedge.Elem || len(node.Children) == 0 {
			return []int{n}
		}
		return nil
	case testFirst:
		if d.pos[n] == 0 {
			return []int{n}
		}
		return nil
	case testLast:
		if d.pos[n] == len(d.sibs[d.sibList[n]])-1 {
			return []int{n}
		}
		return nil
	case testText:
		if node.Kind == hedge.Var {
			return []int{n}
		}
		return nil
	case testLabel:
		if node.Kind == hedge.Elem && node.Name == a.label {
			return []int{n}
		}
		return nil
	}
	return nil
}
