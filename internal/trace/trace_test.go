package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if !tr.Begin().IsZero() {
		t.Fatal("nil tracer Begin should return the zero time")
	}
	if ns := Since(time.Time{}); ns != 0 {
		t.Fatalf("Since(zero) = %d, want 0", ns)
	}
	tr.Commit(RecordTrace{Index: 1})
	tr.Reset()
	if tr.Total() != 0 || tr.Traces() != nil {
		t.Fatal("nil tracer should record nothing")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Commit(RecordTrace{Index: i})
	}
	if got := tr.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("len(Traces) = %d, want 3", len(traces))
	}
	for i, want := range []int{2, 3, 4} {
		if traces[i].Index != want {
			t.Fatalf("Traces[%d].Index = %d, want %d (oldest first)", i, traces[i].Index, want)
		}
	}
}

func TestZeroCapacityCountsWithoutRetaining(t *testing.T) {
	tr := New(0)
	tr.Commit(RecordTrace{Index: 7})
	if tr.Total() != 1 {
		t.Fatalf("Total = %d, want 1", tr.Total())
	}
	if got := tr.Traces(); len(got) != 0 {
		t.Fatalf("Traces = %v, want empty", got)
	}
}

func TestReset(t *testing.T) {
	tr := New(2)
	tr.Commit(RecordTrace{Index: 0})
	tr.Commit(RecordTrace{Index: 1})
	tr.Commit(RecordTrace{Index: 2})
	tr.Reset()
	if tr.Total() != 0 || len(tr.Traces()) != 0 {
		t.Fatal("Reset should clear count and ring")
	}
	tr.Commit(RecordTrace{Index: 9})
	got := tr.Traces()
	if len(got) != 1 || got[0].Index != 9 {
		t.Fatalf("post-Reset Traces = %v, want [record 9]", got)
	}
}

func TestSpanMeasuresElapsed(t *testing.T) {
	tr := New(1)
	t0 := tr.Begin()
	time.Sleep(2 * time.Millisecond)
	if ns := Since(t0); ns < int64(time.Millisecond) {
		t.Fatalf("Since = %dns, want >= 1ms", ns)
	}
}

func TestWriteJSONStableShape(t *testing.T) {
	tr := New(2)
	tr.Commit(RecordTrace{
		Index: 4, Path: "1.3", SplitNS: 100, EvalNS: 200, DeliverNS: 50,
		TotalNS: 350, Nodes: 12, Matches: 2, Outcome: "ok",
		Events: []Event{{At: 10, Name: "resync", Detail: "offset=99"}},
	})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"record": 4`, `"path": "1.3"`, `"total_ns": 350`,
		`"outcome": "ok"`, `"name": "resync"`, `"detail": "offset=99"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %s:\n%s", want, out)
		}
	}
	var decoded []RecordTrace
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Matches != 2 {
		t.Fatalf("round trip mismatch: %+v", decoded)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(4).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty tracer JSON = %q, want []", got)
	}
}

func TestEventSink(t *testing.T) {
	var nilSink *EventSink
	nilSink.Emit("x", "y")
	if nilSink.Drain() != nil || nilSink.Enabled() {
		t.Fatal("nil sink should collect nothing")
	}
	s := NewEventSink()
	if !s.Enabled() {
		t.Fatal("live sink should report Enabled")
	}
	s.Emit("skim", "3 opens")
	s.Emit("resync", "offset=42")
	evs := s.Drain()
	if len(evs) != 2 || evs[0].Name != "skim" || evs[1].Detail != "offset=42" {
		t.Fatalf("Drain = %+v", evs)
	}
	if evs[1].At < evs[0].At {
		t.Fatalf("event offsets not monotone: %+v", evs)
	}
	if s.Drain() != nil {
		t.Fatal("second Drain should be empty")
	}
}

func TestConcurrentCommitAndRead(t *testing.T) {
	tr := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Commit(RecordTrace{Index: g*1000 + i, Outcome: "ok"})
				if i%17 == 0 {
					_ = tr.Traces()
					_ = tr.Total()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("Total = %d, want 800", tr.Total())
	}
	if got := len(tr.Traces()); got != 8 {
		t.Fatalf("retained %d, want 8", got)
	}
}

func BenchmarkDisabledHooks(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		t0 := tr.Begin()
		sink += Since(t0)
		if tr != nil {
			tr.Commit(RecordTrace{})
		}
	}
	if sink != 0 {
		b.Fatal("disabled spans must measure zero")
	}
}

func ExampleTracer() {
	tr := New(2)
	tr.Commit(RecordTrace{Index: 0, Outcome: "ok", TotalNS: 1200})
	tr.Commit(RecordTrace{Index: 1, Outcome: "skipped", Error: "boom"})
	for _, rt := range tr.Traces() {
		fmt.Printf("record %d: %s\n", rt.Index, rt.Outcome)
	}
	// Output:
	// record 0: ok
	// record 1: skipped
}
