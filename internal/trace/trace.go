// Package trace is the engine's per-record tracing substrate: cheap
// monotonic-clock spans, point events from lower layers (the record
// splitter's recovery paths), and a bounded flight-recorder ring of
// recent record traces.
//
// The design contract mirrors internal/metrics: tracing must cost
// nothing when disabled. Every entry point is nil-safe — the stream
// pipeline holds a possibly-nil *Tracer and calls through it without
// guarding, and a nil receiver returns immediately — so the disabled
// path is one pointer test per hook, no clock reads, no allocation
// (the trace-overhead workload in BENCH_core.json gates this budget).
// When enabled, a record's trace is assembled on the stack by the
// pipeline (spans from Begin/Since, events drained from an EventSink)
// and committed once, so the ring sees exactly one trace per record
// that reached an in-order verdict — delivered, skipped, or aborted.
package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is a point-in-time annotation attached to a record's trace:
// splitter recovery activity (token skims, raw resynchronizations,
// truncation) and record boundaries. At is nanoseconds since the
// emitting sink was created (run start).
type Event struct {
	At     int64  `json:"at_ns"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
}

// RecordTrace is the assembled trace of one streamed record (or, at the
// facade, one in-memory document evaluation): per-stage span durations,
// result counts, the record's fate, and any events the splitter emitted
// while producing it. Field order fixes the JSON encoding.
type RecordTrace struct {
	// Index is the record's 0-based sequence number (-1 for in-memory
	// document evaluations, which have no record stream).
	Index int `json:"record"`
	// Path is the Dewey path of the record root in the input document.
	Path string `json:"path,omitempty"`
	// Query is the query source, set by facade-level document traces
	// (streamed records share one query; repeating it per record would
	// be noise).
	Query string `json:"query,omitempty"`
	// RequestID correlates the trace with the serving-layer request
	// that caused the run (the X-Request-Id contract in internal/serve);
	// "" for library runs that set none.
	RequestID string `json:"request_id,omitempty"`
	// SplitNS / EvalNS / DeliverNS are the stage span durations;
	// TotalNS is their sum (the figure slow-record routing compares
	// against the threshold).
	SplitNS   int64 `json:"split_ns"`
	EvalNS    int64 `json:"eval_ns"`
	DeliverNS int64 `json:"deliver_ns"`
	TotalNS   int64 `json:"total_ns"`
	// Nodes and Matches are the record's node count and located-node
	// count (zero for failed records).
	Nodes   int `json:"nodes"`
	Matches int `json:"matches"`
	// Outcome is the record's fate: "ok" (delivered), "skipped"
	// (failed, dropped by the error policy), or "aborted" (failed, and
	// the policy — or its absence — ended the run).
	Outcome string `json:"outcome"`
	// Error is the failure rendered as text, "" on success.
	Error string `json:"error,omitempty"`
	// Events are the splitter events attributed to this record, oldest
	// first.
	Events []Event `json:"events,omitempty"`
}

// Begin opens a span: it returns the monotonic reading Since measures
// from. A nil Tracer returns the zero time and the span is inert —
// the disabled path performs no clock read.
func (t *Tracer) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since closes a span opened by Begin, in nanoseconds; a zero start
// (disabled tracer) reports zero without reading the clock.
func Since(t0 time.Time) int64 {
	if t0.IsZero() {
		return 0
	}
	return int64(time.Since(t0))
}

// Tracer is a bounded flight recorder: a ring of the last capacity
// record traces. All methods are nil-safe and safe for concurrent use
// (the parallel pipeline's collector commits while observers read).
type Tracer struct {
	mu    sync.Mutex
	ring  []RecordTrace
	next  int
	total int64
}

// New returns a Tracer retaining the last capacity traces. A capacity
// <= 0 disables retention: Commit still counts records (and the caller
// may still route slow ones), but Traces returns nothing.
func New(capacity int) *Tracer {
	t := &Tracer{}
	if capacity > 0 {
		t.ring = make([]RecordTrace, 0, capacity)
	}
	return t
}

// Commit records one assembled trace, evicting the oldest when the ring
// is full. Nil-safe: a nil Tracer drops the trace.
func (t *Tracer) Commit(rt RecordTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total++
	if cap(t.ring) > 0 {
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, rt)
		} else {
			t.ring[t.next] = rt
			t.next = (t.next + 1) % cap(t.ring)
		}
	}
	t.mu.Unlock()
}

// Total returns the number of traces ever committed (retained or not).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Traces returns the retained traces, oldest first. The slice is a
// copy; a nil Tracer returns nil.
func (t *Tracer) Traces() []RecordTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RecordTrace, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Reset drops the retained traces and zeroes the commit count, keeping
// the capacity.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.mu.Unlock()
}

// WriteJSON encodes the retained traces (oldest first) as indented
// JSON followed by a newline.
func (t *Tracer) WriteJSON(w io.Writer) error {
	traces := t.Traces()
	if traces == nil {
		traces = []RecordTrace{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traces)
}

// EventSink collects point events emitted by a lower layer between
// drains. The splitter owns one per run — single-goroutine, like the
// reader itself — and the pipeline drains it into each record's trace,
// so recovery events land on the record whose production caused them.
// Emit and Drain are nil-safe: a detached splitter pays one pointer
// test per would-be event.
type EventSink struct {
	t0     time.Time
	events []Event
}

// NewEventSink returns an empty sink; event offsets count from now.
func NewEventSink() *EventSink { return &EventSink{t0: time.Now()} }

// Emit appends one event. Nil-safe.
func (s *EventSink) Emit(name, detail string) {
	if s == nil {
		return
	}
	s.events = append(s.events, Event{At: int64(time.Since(s.t0)), Name: name, Detail: detail})
}

// Enabled reports whether events are being collected; lower layers
// gate the rendering of event detail strings on it.
func (s *EventSink) Enabled() bool { return s != nil }

// Drain returns the collected events and resets the sink. The returned
// slice is owned by the caller. Nil-safe.
func (s *EventSink) Drain() []Event {
	if s == nil || len(s.events) == 0 {
		return nil
	}
	out := s.events
	s.events = nil
	return out
}
