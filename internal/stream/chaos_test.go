package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xpe/internal/core"
	"xpe/internal/faultinject"
	"xpe/internal/ha"
	"xpe/internal/metrics"
	"xpe/internal/trace"
	"xpe/internal/xmlhedge"
)

// chaosQuery locates exactly one node per healthy faultinject feed record
// (see faultinject.FeedSpec).
func chaosQuery(t testing.TB) *core.CompiledQuery {
	t.Helper()
	return compile(t, ha.NewNames(), "[* ; a ; b .] rec")
}

// runSkip runs the stream with a skip-all policy, returning the delivered
// record indices, the per-failure RecordErrors (in policy order), and the
// stats. It fails the test on any terminal error.
func runSkip(t *testing.T, spec faultinject.FeedSpec, cfg Config, inject Injector) ([]int, []*RecordError, Stats) {
	t.Helper()
	cq := chaosQuery(t)
	cfg.Split = spec.SplitName()
	cfg.Inject = inject
	var fails []*RecordError
	cfg.OnRecordError = func(e *RecordError) error {
		fails = append(fails, e)
		return nil
	}
	var delivered []int
	stats, err := Run(context.Background(), spec.Reader(), cq, cfg, func(r *Result) error {
		if len(r.Matches) != 1 {
			t.Errorf("record %d delivered %d matches, want 1", r.Index, len(r.Matches))
		}
		delivered = append(delivered, r.Index)
		return nil
	})
	if err != nil {
		t.Fatalf("terminal error: %v", err)
	}
	return delivered, fails, stats
}

// wantIDs asserts got equals want exactly (order included).
func wantIDs(t *testing.T, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s = %v, want %v", what, got, want)
		}
	}
}

func TestChaosSkipMalformed(t *testing.T) {
	spec := faultinject.FeedSpec{
		Records:   40,
		Malformed: map[int]bool{3: true, 10: true, 22: true},
	}
	for _, workers := range []int{1, 8} {
		delivered, fails, stats := runSkip(t, spec, Config{Workers: workers}, nil)
		wantIDs(t, fmt.Sprintf("workers=%d delivered", workers), delivered, spec.HealthyIDs())
		if len(fails) != 3 || stats.Skipped != 3 {
			t.Fatalf("workers=%d: fails=%d skipped=%d, want 3", workers, len(fails), stats.Skipped)
		}
		// Policy consulted in document order with the right attribution.
		for i, want := range []int{3, 10, 22} {
			if fails[i].Index != want {
				t.Fatalf("workers=%d: failure %d attributed to record %d, want %d", workers, i, fails[i].Index, want)
			}
			var pe *xmlhedge.RecordParseError
			if !errors.As(fails[i].Err, &pe) {
				t.Fatalf("workers=%d: failure cause = %v, want RecordParseError", workers, fails[i].Err)
			}
		}
		if stats.Recovered != 0 {
			t.Fatalf("workers=%d: recovered = %d, want 0", workers, stats.Recovered)
		}
	}
}

func TestChaosSkipPanics(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 30}
	for _, workers := range []int{1, 8} {
		inject := faultinject.NewEvalFaults().PanicOn(2, 7)
		delivered, fails, stats := runSkip(t, spec, Config{Workers: workers}, inject)
		want := []int{}
		for i := 0; i < 30; i++ {
			if i != 2 && i != 7 {
				want = append(want, i)
			}
		}
		wantIDs(t, fmt.Sprintf("workers=%d delivered", workers), delivered, want)
		if stats.Skipped != 2 || stats.Recovered != 2 {
			t.Fatalf("workers=%d: skipped=%d recovered=%d, want 2/2", workers, stats.Skipped, stats.Recovered)
		}
		for _, f := range fails {
			var pe *PanicError
			if !errors.As(f.Err, &pe) {
				t.Fatalf("workers=%d: failure cause = %v, want PanicError", workers, f.Err)
			}
			if len(pe.Stack) == 0 {
				t.Fatalf("workers=%d: panic captured no stack", workers)
			}
		}
	}
}

func TestChaosAbortPanicNilPolicy(t *testing.T) {
	// A panicking record with no policy aborts the run with the typed
	// record error — but the worker goroutine and the Engine survive.
	spec := faultinject.FeedSpec{Records: 20}
	cq := chaosQuery(t)
	for _, workers := range []int{1, 8} {
		inject := faultinject.NewEvalFaults().PanicOn(4)
		_, err := Run(context.Background(), spec.Reader(), cq,
			Config{Workers: workers, Split: spec.SplitName(), Inject: inject},
			func(r *Result) error { return nil })
		var re *RecordError
		if !errors.As(err, &re) || re.Index != 4 {
			t.Fatalf("workers=%d: err = %v, want RecordError for record 4", workers, err)
		}
		var pe *PanicError
		if !errors.As(re.Err, &pe) {
			t.Fatalf("workers=%d: cause = %v, want PanicError", workers, re.Err)
		}
	}
}

func TestChaosSkipLimits(t *testing.T) {
	spec := faultinject.FeedSpec{
		Records:   20,
		Oversized: map[int]int{5: 50, 11: 50},
	}
	for _, workers := range []int{1, 8} {
		delivered, fails, stats := runSkip(t, spec,
			Config{Workers: workers, MaxRecordNodes: 10}, nil)
		wantIDs(t, fmt.Sprintf("workers=%d delivered", workers), delivered, spec.HealthyIDs())
		if stats.Skipped != 2 {
			t.Fatalf("workers=%d: skipped = %d, want 2", workers, stats.Skipped)
		}
		for _, f := range fails {
			var le *xmlhedge.LimitError
			if !errors.As(f.Err, &le) || le.Kind != "nodes" {
				t.Fatalf("workers=%d: failure cause = %v, want nodes LimitError", workers, f.Err)
			}
		}
	}
}

func TestChaosSkipRecordBytes(t *testing.T) {
	spec := faultinject.FeedSpec{
		Records:   12,
		Oversized: map[int]int{6: 100},
	}
	for _, workers := range []int{1, 4} {
		delivered, fails, stats := runSkip(t, spec,
			Config{Workers: workers, MaxRecordBytes: 256}, nil)
		wantIDs(t, fmt.Sprintf("workers=%d delivered", workers), delivered, spec.HealthyIDs())
		if stats.Skipped != 1 || len(fails) != 1 {
			t.Fatalf("workers=%d: skipped=%d, want 1", workers, stats.Skipped)
		}
		var le *xmlhedge.LimitError
		if !errors.As(fails[0].Err, &le) || le.Kind != "bytes" {
			t.Fatalf("workers=%d: failure cause = %v, want bytes LimitError", workers, fails[0].Err)
		}
	}
}

func TestChaosStreamBudgetAbortsDespiteSkip(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 100}
	cq := chaosQuery(t)
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), spec.Reader(), cq,
			Config{
				Workers: workers, Split: spec.SplitName(), MaxStreamBytes: 300,
				OnRecordError: func(*RecordError) error { return nil },
			},
			func(r *Result) error { return nil })
		var le *xmlhedge.LimitError
		if !errors.As(err, &le) || le.Kind != "stream" {
			t.Fatalf("workers=%d: err = %v, want stream LimitError", workers, err)
		}
	}
}

func TestChaosTimeout(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 10}
	for _, workers := range []int{1, 4} {
		inject := faultinject.NewEvalFaults().StallOn(60*time.Millisecond, 3)
		delivered, fails, stats := runSkip(t, spec,
			Config{Workers: workers, RecordTimeout: 10 * time.Millisecond}, inject)
		want := []int{0, 1, 2, 4, 5, 6, 7, 8, 9}
		wantIDs(t, fmt.Sprintf("workers=%d delivered", workers), delivered, want)
		if stats.Skipped != 1 || len(fails) != 1 {
			t.Fatalf("workers=%d: skipped=%d fails=%d, want 1/1", workers, stats.Skipped, len(fails))
		}
		if !errors.Is(fails[0].Err, ErrRecordTimeout) || fails[0].Index != 3 {
			t.Fatalf("workers=%d: failure = %v, want timeout on record 3", workers, fails[0])
		}
		if stats.Recovered != 0 {
			t.Fatalf("workers=%d: recovered = %d, want 0 (timeouts are not panics)", workers, stats.Recovered)
		}
	}
}

func TestChaosReaderShortReads(t *testing.T) {
	// Byte-at-a-time delivery must not change results.
	spec := faultinject.FeedSpec{Records: 15, Malformed: map[int]bool{4: true}}
	cq := chaosQuery(t)
	var delivered []int
	stats, err := Run(context.Background(),
		faultinject.NewReader(spec.Reader(), faultinject.ReaderOptions{ChunkSizes: []int{1, 7}}),
		cq,
		Config{
			Workers: 4, Split: spec.SplitName(),
			OnRecordError: func(*RecordError) error { return nil },
		},
		func(r *Result) error { delivered = append(delivered, r.Index); return nil })
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, "delivered", delivered, spec.HealthyIDs())
	if stats.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", stats.Skipped)
	}
}

func TestChaosReaderFailureBypassesPolicy(t *testing.T) {
	// An I/O error is not a record failure: it aborts even under a skip
	// policy, and the policy is never consulted for it.
	spec := faultinject.FeedSpec{Records: 50}
	cq := chaosQuery(t)
	for _, workers := range []int{1, 4} {
		policyCalls := 0
		_, err := Run(context.Background(),
			faultinject.NewReader(spec.Reader(), faultinject.ReaderOptions{FailAfter: 200}),
			cq,
			Config{
				Workers: workers, Split: spec.SplitName(),
				OnRecordError: func(*RecordError) error { policyCalls++; return nil },
			},
			func(r *Result) error { return nil })
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("workers=%d: err = %v, want ErrInjected", workers, err)
		}
		if policyCalls != 0 {
			t.Fatalf("workers=%d: policy consulted %d times for an I/O error", workers, policyCalls)
		}
	}
}

func TestChaosTruncatedFeed(t *testing.T) {
	spec := faultinject.FeedSpec{Records: 10, Truncated: true}
	for _, workers := range []int{1, 4} {
		delivered, fails, stats := runSkip(t, spec, Config{Workers: workers}, nil)
		wantIDs(t, fmt.Sprintf("workers=%d delivered", workers), delivered, spec.HealthyIDs())
		if stats.Skipped != 1 || len(fails) != 1 {
			t.Fatalf("workers=%d: skipped=%d fails=%d, want 1/1 (the truncated tail)", workers, stats.Skipped, len(fails))
		}
	}
}

func TestChaosMixed(t *testing.T) {
	// Malformed records, a limit violation, forced panics, and a truncated
	// tail, all in one stream: every healthy record's match arrives, in
	// order, with exact failure accounting.
	spec := faultinject.FeedSpec{
		Records:   60,
		Malformed: map[int]bool{7: true, 25: true},
		Oversized: map[int]int{40: 50},
		Truncated: true,
	}
	panicked := []int{13, 31}
	for _, workers := range []int{1, 8} {
		inject := faultinject.NewEvalFaults().PanicOn(panicked...)
		delivered, fails, stats := runSkip(t, spec,
			Config{Workers: workers, MaxRecordNodes: 10}, inject)
		want := []int{}
		for _, id := range spec.HealthyIDs() {
			if id != 13 && id != 31 {
				want = append(want, id)
			}
		}
		wantIDs(t, fmt.Sprintf("workers=%d delivered", workers), delivered, want)
		// 2 malformed + 1 oversized + 2 panicked + 1 truncated tail.
		if stats.Skipped != 6 || len(fails) != 6 {
			t.Fatalf("workers=%d: skipped=%d fails=%d, want 6/6", workers, stats.Skipped, len(fails))
		}
		if stats.Recovered != 2 {
			t.Fatalf("workers=%d: recovered = %d, want 2", workers, stats.Recovered)
		}
		if stats.Records != int64(len(want)) {
			t.Fatalf("workers=%d: records = %d, want %d", workers, stats.Records, len(want))
		}
		// Failures reach the policy in document order.
		for i := 1; i < len(fails); i++ {
			if fails[i].Index <= fails[i-1].Index {
				t.Fatalf("workers=%d: policy order violated: %d then %d", workers, fails[i-1].Index, fails[i].Index)
			}
		}
	}
}

func TestChaosPolicyAbortMidStream(t *testing.T) {
	// A policy that aborts on the second failure: the run ends with the
	// policy's error, after delivering everything before it.
	spec := faultinject.FeedSpec{Records: 30, Malformed: map[int]bool{5: true, 12: true}}
	cq := chaosQuery(t)
	giveUp := errors.New("two strikes")
	for _, workers := range []int{1, 8} {
		seen := 0
		var delivered []int
		_, err := Run(context.Background(), spec.Reader(), cq,
			Config{
				Workers: workers, Split: spec.SplitName(),
				OnRecordError: func(e *RecordError) error {
					if seen++; seen == 2 {
						return giveUp
					}
					return nil
				},
			},
			func(r *Result) error { delivered = append(delivered, r.Index); return nil })
		if !errors.Is(err, giveUp) {
			t.Fatalf("workers=%d: err = %v, want the policy's error", workers, err)
		}
		for _, idx := range delivered {
			if idx > 12 {
				// In-order delivery means nothing past the aborting record
				// was yielded before the abort (the producer may have read
				// ahead, but delivery stops).
				t.Fatalf("workers=%d: record %d delivered after the aborting failure", workers, idx)
			}
		}
	}
}

func TestChaosErrStopWrapped(t *testing.T) {
	// Regression: a wrapped stop sentinel must end the stream cleanly.
	input := feed(30)
	cq := compile(t, ha.NewNames(), "[* ; a ; b .] entry")
	wrapped := fmt.Errorf("done early: %w", ErrStop)
	for _, workers := range []int{1, 4} {
		seen := 0
		stats, err := Run(context.Background(), strings.NewReader(input), cq, Config{Workers: workers},
			func(r *Result) error {
				if seen++; seen == 5 {
					return wrapped
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: err = %v, want nil for wrapped ErrStop", workers, err)
		}
		if stats.Records != 5 {
			t.Fatalf("workers=%d: records = %d, want 5", workers, stats.Records)
		}
	}
}

// traceByIndex groups a run's retained traces by record index, failing
// the test on duplicates: the flight-recorder contract is exactly one
// trace per record that reached an in-order verdict.
func traceByIndex(t *testing.T, tr *trace.Tracer) map[int]trace.RecordTrace {
	t.Helper()
	out := map[int]trace.RecordTrace{}
	for _, rt := range tr.Traces() {
		if _, dup := out[rt.Index]; dup {
			t.Fatalf("record %d committed more than one trace", rt.Index)
		}
		out[rt.Index] = rt
	}
	return out
}

func TestChaosTraceOneVerdictPerRecord(t *testing.T) {
	// Malformed and panicking records under a skip policy: every record —
	// delivered or skipped — appears exactly once in the flight recorder,
	// with the right outcome, a closed (totaled) span set, and an error
	// rendering on the failures.
	spec := faultinject.FeedSpec{
		Records:   20,
		Malformed: map[int]bool{3: true, 9: true},
	}
	skipped := map[int]bool{3: true, 6: true, 9: true}
	for _, workers := range []int{1, 4} {
		tr := trace.New(64)
		inject := faultinject.NewEvalFaults().PanicOn(6)
		_, _, stats := runSkip(t, spec, Config{Workers: workers, Trace: tr}, inject)
		if stats.Skipped != 3 {
			t.Fatalf("workers=%d: skipped = %d, want 3", workers, stats.Skipped)
		}
		if tr.Total() != int64(spec.Records) {
			t.Fatalf("workers=%d: committed %d traces, want %d", workers, tr.Total(), spec.Records)
		}
		byIdx := traceByIndex(t, tr)
		for i := 0; i < spec.Records; i++ {
			rt, ok := byIdx[i]
			if !ok {
				t.Fatalf("workers=%d: record %d has no trace", workers, i)
			}
			if rt.TotalNS != rt.SplitNS+rt.EvalNS+rt.DeliverNS {
				t.Fatalf("workers=%d: record %d spans not totaled: %+v", workers, i, rt)
			}
			if skipped[i] {
				if rt.Outcome != "skipped" || rt.Error == "" {
					t.Fatalf("workers=%d: record %d trace = %+v, want skipped with an error", workers, i, rt)
				}
				continue
			}
			if rt.Outcome != "ok" || rt.Error != "" || rt.Matches != 1 {
				t.Fatalf("workers=%d: record %d trace = %+v, want ok with 1 match", workers, i, rt)
			}
			if rt.SplitNS+rt.EvalNS <= 0 {
				t.Fatalf("workers=%d: record %d delivered with empty spans: %+v", workers, i, rt)
			}
		}
	}
}

func TestChaosTraceTimedOutCounted(t *testing.T) {
	// A timed-out record is counted separately from generic skips — in
	// Stats, in the metrics counter, and as a skipped trace whose error
	// names the timeout.
	spec := faultinject.FeedSpec{Records: 10}
	for _, workers := range []int{1, 4} {
		tr := trace.New(16)
		var m metrics.Metrics
		inject := faultinject.NewEvalFaults().StallOn(60*time.Millisecond, 3)
		_, fails, stats := runSkip(t, spec,
			Config{Workers: workers, RecordTimeout: 10 * time.Millisecond, Trace: tr, Metrics: &m}, inject)
		if stats.TimedOut != 1 || stats.Skipped != 1 || len(fails) != 1 {
			t.Fatalf("workers=%d: timedout=%d skipped=%d fails=%d, want 1/1/1",
				workers, stats.TimedOut, stats.Skipped, len(fails))
		}
		if got := m.Stream.RecordsTimedOut.Load(); got != 1 {
			t.Fatalf("workers=%d: metrics records_timed_out = %d, want 1", workers, got)
		}
		rt, ok := traceByIndex(t, tr)[3]
		if !ok {
			t.Fatalf("workers=%d: no trace for the timed-out record", workers)
		}
		if rt.Outcome != "skipped" || !strings.Contains(rt.Error, "timed out") {
			t.Fatalf("workers=%d: timed-out trace = %+v, want skipped with a timeout error", workers, rt)
		}
	}
}

func TestChaosTraceRecoveryEvents(t *testing.T) {
	// Sequential recovery attribution: each delivered record's trace
	// carries its own "record" boundary event, and the splitter's recovery
	// activity for a skipped record lands on the *following* record's
	// trace (the skip verdict commits before Recover runs), with the event
	// detail naming the record it concerns.
	spec := faultinject.FeedSpec{Records: 8, Malformed: map[int]bool{2: true}}
	tr := trace.New(16)
	_, _, stats := runSkip(t, spec, Config{Workers: 1, Trace: tr}, nil)
	if stats.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", stats.Skipped)
	}
	byIdx := traceByIndex(t, tr)
	for _, id := range spec.HealthyIDs() {
		rt := byIdx[id]
		found := false
		for _, ev := range rt.Events {
			if ev.Name == "record" && strings.Contains(ev.Detail, fmt.Sprintf("record %d ", id)) {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d trace has no boundary event: %+v", id, rt.Events)
		}
	}
	recovery := false
	for _, ev := range byIdx[3].Events {
		if (ev.Name == "resync" || ev.Name == "resync_hit" || ev.Name == "skim") &&
			strings.Contains(ev.Detail, "record 2") {
			recovery = true
		}
	}
	if !recovery {
		t.Fatalf("record 3 trace carries no recovery event for skipped record 2: %+v", byIdx[3].Events)
	}
	// The skipped record's own trace committed before recovery started.
	for _, ev := range byIdx[2].Events {
		if ev.Name == "resync" || ev.Name == "resync_hit" || ev.Name == "skim" {
			t.Fatalf("recovery event leaked onto the skipped record's own trace: %+v", ev)
		}
	}
}

func TestChaosTraceSlowRecordRouting(t *testing.T) {
	// A 1ns threshold routes every delivered record to OnSlow (tracing
	// works with no ring attached — the slow-record log alone forces span
	// assembly); an unreachable threshold routes none.
	spec := faultinject.FeedSpec{Records: 12}
	for _, workers := range []int{1, 4} {
		var slow []trace.RecordTrace
		cfg := Config{Workers: workers, SlowThreshold: time.Nanosecond,
			OnSlow: func(rt trace.RecordTrace) { slow = append(slow, rt) }}
		_, _, stats := runSkip(t, spec, cfg, nil)
		if int64(len(slow)) != stats.Records {
			t.Fatalf("workers=%d: %d slow records routed, want all %d", workers, len(slow), stats.Records)
		}
		for _, rt := range slow {
			if rt.Outcome != "ok" || rt.TotalNS <= 0 {
				t.Fatalf("workers=%d: slow trace = %+v, want ok with a positive total", workers, rt)
			}
		}
		none := 0
		cfg = Config{Workers: workers, SlowThreshold: time.Hour,
			OnSlow: func(trace.RecordTrace) { none++ }}
		runSkip(t, spec, cfg, nil)
		if none != 0 {
			t.Fatalf("workers=%d: %d records crossed an hour-long threshold", workers, none)
		}
	}
}

func TestChaosAbortIsRawErrorWithNilPolicy(t *testing.T) {
	// With no policy, a splitter failure surfaces the raw splitter error —
	// the exact pre-policy surface — not a *RecordError wrapper.
	spec := faultinject.FeedSpec{Records: 10, Malformed: map[int]bool{4: true}}
	cq := chaosQuery(t)
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), spec.Reader(), cq,
			Config{Workers: workers, Split: spec.SplitName()},
			func(r *Result) error { return nil })
		var re *RecordError
		if errors.As(err, &re) {
			t.Fatalf("workers=%d: err = %T, want the raw splitter error", workers, err)
		}
		var pe *xmlhedge.RecordParseError
		if !errors.As(err, &pe) || pe.Index != 4 {
			t.Fatalf("workers=%d: err = %v, want RecordParseError for record 4", workers, err)
		}
	}
}
