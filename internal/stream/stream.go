// Package stream evaluates a compiled selection query over an XML input
// stream record by record: the input is split into records (top-level
// children of the document element, or subtrees rooted at a configured
// split element), each record is parsed into a recycled arena-backed hedge
// and evaluated with Algorithm 1, and the per-record results are delivered
// through a callback in document order — as soon as each record completes.
//
// Peak memory is O(largest record × in-flight records), never O(document):
// with W workers at most W+1 record arenas exist, and a single-worker run
// holds exactly one. Records are independent evaluation units — each is
// treated as its own document, so a query's envelope conditions range over
// the record subtree only (the paper's Algorithm 1 run per record). That is
// the semantics that admits single-pass bounded-memory evaluation: sibling
// conditions of record ancestors would need the not-yet-read remainder of
// the document.
//
// # Fault containment
//
// Record independence also bounds the blast radius of a failure: a
// malformed record, a limit violation, or a panicking evaluation concerns
// exactly one record. Config.OnRecordError decides each failed record's
// fate — consulted in document order, on the caller's goroutine, with a
// typed *RecordError. Returning nil skips the record (the splitter skims
// or resynchronizes past it, see xmlhedge.RecordReader.Recover) and the
// stream continues; returning an error aborts the run with it. A nil
// policy aborts on the first failure, preserving the pre-policy behavior
// exactly. Failures that cannot be contained to a record — reader I/O
// errors, cancellation, the stream byte budget, malformed markup with no
// named split to resynchronize on — bypass the policy and abort.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/hedge"
	"xpe/internal/metrics"
	"xpe/internal/trace"
	"xpe/internal/xmlhedge"
)

// Config tunes a streaming run; the zero value is the default
// configuration.
type Config struct {
	// Split names the record root element; empty splits at the document
	// element's children (see xmlhedge.RecordOptions.Split).
	Split string
	// Workers is the number of concurrent evaluation workers; <=0 means
	// GOMAXPROCS. Results are delivered in document order regardless.
	Workers int
	// BatchSize is the number of records per worker handoff in parallel
	// runs (0 = auto, currently 32; 1 restores record-at-a-time handoff).
	// Larger batches amortize channel and scheduler costs per record but
	// raise peak memory — the bound is O(largest record × BatchSize ×
	// (Workers+2)) — and delivery latency for slow producers. Sequential
	// runs ignore it.
	BatchSize int
	// MaxRecordNodes / MaxRecordDepth bound individual records (0 =
	// unlimited); a violating record fails with *xmlhedge.LimitError,
	// routed through OnRecordError.
	MaxRecordNodes int
	MaxRecordDepth int
	// MaxRecordBytes bounds the raw input bytes one record may span;
	// MaxStreamBytes bounds total input consumption (0 = unlimited).
	// A record over its byte budget is a record-scoped failure; an
	// exhausted stream budget aborts the run regardless of policy.
	MaxRecordBytes int64
	MaxStreamBytes int64
	// RecordTimeout bounds one record's evaluation wall time (0 =
	// unlimited). Enforcement is cooperative — the deadline is checked
	// between matches and after the traversal — so it catches slow
	// records, not a wedged evaluation.
	RecordTimeout time.Duration
	// OnRecordError is the per-record failure policy. Nil aborts the run
	// on the first failure with the raw error (legacy behavior). When set,
	// it is called once per failed record, in document order, on the
	// goroutine running the collector (never concurrently): return nil to
	// skip the record, or an error to abort the run with it.
	OnRecordError func(*RecordError) error
	// Inject, when non-nil, is called at the fault-injection points (test
	// only; see internal/faultinject).
	Inject Injector
	// KeepWhitespace retains whitespace-only text nodes.
	KeepWhitespace bool
	// Prefilter controls the raw-byte record prefilter. PrefilterAuto (the
	// zero value) derives the query's required labels at Run time and skips
	// records whose bytes cannot contain them all — no parse, no eval —
	// falling back to a byte-identical normal parse whenever the skim is
	// unsure. PrefilterOff disables the cascade entirely; results are
	// identical either way, only Stats.Prefiltered and throughput differ.
	Prefilter PrefilterMode
	// Metrics, when non-nil, receives live instrumentation: splitter
	// counters (Metrics.Split, flushed per record by the RecordReader) and
	// per-stage timings plus worker occupancy (Metrics.Stream). Evaluation
	// counters flow through the sink attached to cq (see
	// core.CompiledQuery.SetMetrics). Timing costs two monotonic clock
	// reads per stage per record when attached and one nil check when not.
	Metrics *metrics.Metrics
	// Trace, when non-nil, receives one trace.RecordTrace per record that
	// reaches an in-order verdict — delivered, skipped, or aborting the
	// run (parallel runs may abort without a trace when the failure
	// bypasses the policy). Stage timings are assembled whenever Trace or
	// OnSlow is set, at the same cost as Metrics timing; splitter events
	// ride the trace of the record being produced when they fired, so
	// recovery activity for a skipped record lands on the *following*
	// record's trace (the event detail names the record it concerns).
	// Nil disables trace assembly entirely.
	Trace *trace.Tracer
	// RequestID, when non-empty, is stamped onto every RecordTrace the
	// run commits, correlating record spans with the serving-layer
	// request that caused them (the X-Request-Id contract in
	// internal/serve). Inert unless tracing is enabled.
	RequestID string
	// SlowThreshold routes records whose split+eval+deliver total meets
	// or exceeds it to OnSlow (0 disables the slow-record log).
	SlowThreshold time.Duration
	// OnSlow receives slow records' traces, on the goroutine delivering
	// results (never concurrently), after the trace is committed to Trace.
	OnSlow func(trace.RecordTrace)
	// Explain captures match provenance: each delivered Match carries a
	// Witness reconstructing the envelope evidence level by level (see
	// core.CompiledQuery.ExplainEach). Provenance allocates per match;
	// leave it off for steady-state throughput.
	Explain bool
}

// PrefilterMode selects whether the raw-byte record prefilter runs.
type PrefilterMode uint8

const (
	// PrefilterAuto enables the prefilter whenever the compiled query
	// requires at least one label (the default).
	PrefilterAuto PrefilterMode = iota
	// PrefilterOff never prefilters; every record is parsed and evaluated.
	PrefilterOff
)

// tracing reports whether per-record traces must be assembled: a ring to
// commit into, or a slow-record callback to feed.
func (cfg *Config) tracing() bool { return cfg.Trace != nil || cfg.OnSlow != nil }

// commitTrace finalizes one record trace: totals the stage spans, stores
// the trace in the flight-recorder ring, and routes it to the slow-record
// callback when it crossed the threshold.
func commitTrace(cfg *Config, rt trace.RecordTrace) {
	rt.TotalNS = rt.SplitNS + rt.EvalNS + rt.DeliverNS
	rt.RequestID = cfg.RequestID
	cfg.Trace.Commit(rt)
	if cfg.OnSlow != nil && cfg.SlowThreshold > 0 && rt.TotalNS >= int64(cfg.SlowThreshold) {
		cfg.OnSlow(rt)
	}
}

// Injector is the fault-injection hook: BeforeEval runs at the start of
// each record's evaluation, inside the panic-containment scope, so an
// injected panic or stall exercises exactly the production failure path.
type Injector interface {
	BeforeEval(index int)
}

// Stats aggregates one streaming run.
type Stats struct {
	Records     int64 // records evaluated and delivered
	Nodes       int64 // total nodes across delivered records
	Matches     int64 // total located nodes
	Bytes       int64 // input bytes consumed by the XML decoder
	Skipped     int64 // failed records dropped by the OnRecordError policy
	TimedOut    int64 // records over RecordTimeout, whether skipped or aborting
	Recovered   int64 // evaluation panics caught and converted to errors
	Prefiltered int64 // records skipped by the raw-byte prefilter cascade
	// Lazy-determinization deltas over the run (zero for eagerly compiled
	// queries; approximate when several runs share one compilation).
	LazyStates    int64 // lazy-DHA states materialized during the run
	LazyHits      int64 // lazy transition-cache hits during the run
	LazyEvictions int64 // lazy transition-cache evictions during the run
}

// Match is one located node within a record.
type Match struct {
	// Query is the index (into RunMulti's query slice) of the query that
	// located this node. Always 0 for single-query Run.
	Query int
	// Path is the record-relative Dewey path (the record root is node 1).
	Path hedge.Path
	// Node is the located node; like Result.Hedge it is arena-backed and
	// valid only until the yield callback returns.
	Node *hedge.Node
	// Witness, when Config.Explain is set, is the match's provenance:
	// the envelope evidence level by level. Unlike Node it is freshly
	// allocated and safe to retain. Nil when Explain is off.
	Witness *core.Witness
}

// Result is one evaluated record.
type Result struct {
	// Index is the 0-based record sequence number.
	Index int
	// Path is the Dewey path of the record root within the input document.
	Path hedge.Path
	// Nodes is the record's node count.
	Nodes int
	// Matches lists the located nodes: document order for a single-query
	// run; for RunMulti, grouped by ascending Match.Query with document
	// order within each query's group.
	Matches []Match

	// curQuery is the query index stamped onto matches as they are
	// collected; safeEvaluate sets it before each query's traversal.
	curQuery int
	pathBuf  []int
	// collect caches the bound SelectEach match sink. The callback escapes
	// into a pooled walker on every evaluation, so an uncached closure
	// would cost one heap allocation per record; the method value here is
	// allocated once per Result lifetime instead. reset keeps it.
	collect func(p hedge.Path, n *hedge.Node) bool
	// fail marks a contained per-record failure (always a *RecordError)
	// traveling the pipeline in place of matches; the collector routes it
	// through the error policy at the record's in-order position.
	fail error
	// await, on splitter-failure tombstones, carries the policy verdict
	// back to the producer, which is blocked mid-recovery waiting for it.
	await chan error
	// splitNS/evalNS/events carry the producer's and worker's trace
	// contributions to the collector when tracing is on. They are not
	// cleared by reset — the worker resets after the producer has already
	// stamped them — so every tracing-enabled path must set all three.
	splitNS int64
	evalNS  int64
	events  []trace.Event
}

// reset prepares a recycled Result for reuse.
func (r *Result) reset() {
	r.Matches = r.Matches[:0]
	r.pathBuf = r.pathBuf[:0]
	r.curQuery = 0
	r.fail = nil
	r.await = nil
}

// addMatch copies the (reused) path into the result's backing buffer and
// appends a match for the query currently being evaluated.
func (r *Result) addMatch(p hedge.Path, n *hedge.Node) {
	start := len(r.pathBuf)
	r.pathBuf = append(r.pathBuf, p...)
	r.Matches = append(r.Matches, Match{Query: r.curQuery,
		Path: r.pathBuf[start:len(r.pathBuf):len(r.pathBuf)], Node: n})
}

// collectMatch is the unbounded match sink: append and keep going.
func (r *Result) collectMatch(p hedge.Path, n *hedge.Node) bool {
	r.addMatch(p, n)
	return true
}

// sink returns the cached bound collectMatch, creating it on first use.
func (r *Result) sink() func(p hedge.Path, n *hedge.Node) bool {
	if r.collect == nil {
		r.collect = r.collectMatch
	}
	return r.collect
}

// ErrStop, returned by a yield callback, ends the stream early with no
// error (mirroring fs.SkipAll). Recognition uses errors.Is, so a wrapped
// stop sentinel works too.
var ErrStop = errors.New("stream: stop")

// ErrRecordTimeout is the cause inside the *RecordError reported for a
// record whose evaluation exceeded Config.RecordTimeout.
var ErrRecordTimeout = errors.New("stream: record evaluation timed out")

// RecordError attributes a contained failure to one record: its index and
// Dewey path in the document, and the cause — a parse error
// (*xmlhedge.RecordParseError in Err's chain), a limit violation
// (*xmlhedge.LimitError), an evaluation panic (*PanicError), or
// ErrRecordTimeout.
type RecordError struct {
	Index int
	Path  hedge.Path
	Err   error
}

func (e *RecordError) Error() string {
	return fmt.Sprintf("stream: record %d at %s: %v", e.Index, e.Path, e.Err)
}

func (e *RecordError) Unwrap() error { return e.Err }

// PanicError is the cause inside the *RecordError reported for a record
// whose evaluation panicked: the recovered value and the stack captured at
// the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("stream: record evaluation panicked: %v", e.Value)
}

// Run streams records from r, evaluates cq on each, and calls yield once
// per record in document order. Hedge nodes referenced by the Result are
// recycled: they are valid only until yield returns. Run returns the stats
// accumulated over delivered records and the first error among: a parse or
// limit error from the splitter, an evaluation failure, a yield error
// (ErrStop is filtered to nil), or ctx cancellation — except for failures
// the cfg.OnRecordError policy chose to skip.
//
// cq must be resolved against the alphabet generation the caller wants
// before Run is entered: the compilation is shared by every worker and is
// never revalidated or recompiled per record (the facade resolves it once,
// pre-fork).
func Run(ctx context.Context, r io.Reader, cq *core.CompiledQuery, cfg Config, yield func(*Result) error) (Stats, error) {
	return runQueries(ctx, r, []*core.CompiledQuery{cq}, cfg, yield)
}

// RunMulti evaluates every query in cqs over one shared pass: the input is
// split and parsed once, and each record drives all the match automata
// instead of one scan per query. Matches carry Match.Query (the index into
// cqs); within one Result they are grouped by ascending query index, in
// document order within each group. Everything else behaves like Run —
// ordering, fault containment, budgets (Config.RecordTimeout bounds one
// record's evaluation across ALL queries, it is not a per-query budget).
//
// Under PrefilterAuto the skim runs against the union of the queries'
// required-label sets: a record is skipped whole only when no query's
// requirement set is fully present (requiring the union conjunctively
// would be unsound), and kept records carry a per-query verdict
// (xmlhedge.Record.Hint) that gates evaluation to the queries whose
// requirements the record can actually satisfy — the shared-pass scaling
// lever on selective workloads. Stats.Matches counts across all queries.
func RunMulti(ctx context.Context, r io.Reader, cqs []*core.CompiledQuery, cfg Config, yield func(*Result) error) (Stats, error) {
	if len(cqs) == 0 {
		return Stats{}, errors.New("stream: RunMulti needs at least one query")
	}
	return runQueries(ctx, r, cqs, cfg, yield)
}

func runQueries(ctx context.Context, r io.Reader, qs []*core.CompiledQuery, cfg Config, yield func(*Result) error) (Stats, error) {
	ropts := xmlhedge.RecordOptions{
		Split:          cfg.Split,
		MaxNodes:       cfg.MaxRecordNodes,
		MaxDepth:       cfg.MaxRecordDepth,
		MaxBytes:       cfg.MaxRecordBytes,
		MaxStreamBytes: cfg.MaxStreamBytes,
		KeepWhitespace: cfg.KeepWhitespace,
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var ms *metrics.Stream
	if cfg.Metrics != nil {
		ropts.Metrics = &cfg.Metrics.Split
		ms = &cfg.Metrics.Stream
		ms.Runs.Inc()
		ms.Workers.Set(int64(workers))
		start := time.Now()
		defer func() { ms.WallTime.Observe(time.Since(start)) }()
	}
	var sink *trace.EventSink
	if cfg.tracing() {
		sink = trace.NewEventSink()
		ropts.Events = sink
	}
	if cfg.Prefilter == PrefilterAuto {
		if len(qs) == 1 {
			// NewPrefilter returns nil when the query has no required labels
			// (e.g. wildcard-only queries), which disables the cascade.
			ropts.Prefilter = xmlhedge.NewPrefilter(qs[0].RequiredLabels())
		} else {
			// One requirement group per query, indices aligned with qs, so
			// the skim verdict doubles as the per-query evaluation gate.
			groups := make([][]string, len(qs))
			for i, cq := range qs {
				groups[i] = cq.RequiredLabels()
			}
			ropts.Prefilter = xmlhedge.NewMultiPrefilter(groups)
		}
	}
	// Lazy-determinization counters live on the shared compilations; deltas
	// around the run attribute this run's share to its Stats. Repeated
	// pointers (the same compilation registered under several indices)
	// count once.
	lz0 := lazyTotals(qs)
	var stats Stats
	var err error
	if workers <= 1 {
		ropts.Ctx = ctx
		rr := xmlhedge.NewRecordReader(r, ropts)
		stats, err = runSequential(ctx, rr, qs, cfg, ms, sink, yield)
		stats.Prefiltered = rr.Prefiltered()
	} else {
		stats, err = runParallel(ctx, r, ropts, qs, workers, cfg, ms, sink, yield)
	}
	lzd := lazyTotals(qs).Sub(lz0)
	stats.LazyStates = lzd.StatesBuilt
	stats.LazyHits = lzd.Hits
	stats.LazyEvictions = lzd.Evictions
	return stats, err
}

// lazyTotals sums lazy-DHA counters across distinct compilations.
func lazyTotals(qs []*core.CompiledQuery) ha.LazyStats {
	if len(qs) == 1 {
		return qs[0].LazyStats()
	}
	var total ha.LazyStats
	for i, cq := range qs {
		dup := false
		for _, prev := range qs[:i] {
			if prev == cq {
				dup = true
				break
			}
		}
		if !dup {
			total = total.Add(cq.LazyStats())
		}
	}
	return total
}

// safeEvaluate runs every live query over one parsed record with panics
// contained and the evaluation timeout enforced — the timeout budget spans
// the whole record, shared by all queries. A query whose verdict bit in
// rec.Hint is clear is provably matchless here (the prefilter found a
// required label absent) and is skipped without touching its automaton. A
// non-nil return is always a *RecordError; on success res holds the
// matches, grouped by query index.
func safeEvaluate(qs []*core.CompiledQuery, rec *xmlhedge.Record, res *Result, cfg *Config) (fail *RecordError) {
	defer func() {
		if v := recover(); v != nil {
			fail = &RecordError{Index: rec.Index, Path: rec.Path,
				Err: &PanicError{Value: v, Stack: debug.Stack()}}
		}
	}()
	res.reset()
	res.Index, res.Path, res.Nodes = rec.Index, rec.Path, rec.Nodes
	timeout := cfg.RecordTimeout
	var start time.Time
	if timeout > 0 || cfg.Inject != nil {
		start = time.Now()
	}
	if cfg.Inject != nil {
		cfg.Inject.BeforeEval(rec.Index)
	}
	// Cooperative deadline: sampled every 64 matches during a traversal
	// (Algorithm 1 is linear and terminating — the budget targets slow
	// records, not infinite loops), between queries, and once more at the
	// end.
	var deadline time.Time
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	n, timedOut := 0, false
	for qi, cq := range qs {
		if !rec.Hint.Allows(qi) {
			continue
		}
		if timeout > 0 && time.Now().After(deadline) {
			timedOut = true
			break
		}
		res.curQuery = qi
		switch {
		case cfg.Explain:
			// Provenance capture: ExplainEach locates exactly what
			// SelectEach does, with each match carrying its witness.
			cq.ExplainEach(rec.Hedge, func(w core.Witness, node *hedge.Node) bool {
				res.addMatch(w.Path, node)
				res.Matches[len(res.Matches)-1].Witness = &w
				if timeout > 0 {
					if n++; n&63 == 0 && time.Now().After(deadline) {
						timedOut = true
						return false
					}
				}
				return true
			})
		case timeout <= 0:
			cq.SelectEach(rec.Hedge, res.sink())
		default:
			cq.SelectEach(rec.Hedge, func(p hedge.Path, node *hedge.Node) bool {
				res.addMatch(p, node)
				if n++; n&63 == 0 && time.Now().After(deadline) {
					timedOut = true
					return false
				}
				return true
			})
		}
		if timedOut {
			break
		}
	}
	if timeout > 0 && (timedOut || time.Since(start) > timeout) {
		return &RecordError{Index: rec.Index, Path: rec.Path, Err: ErrRecordTimeout}
	}
	return nil
}

// recordFailure attributes a record-scoped splitter failure to its record,
// pulling index and path out of the typed error when present (limit
// violations and in-record parse errors carry them; truncations fall back
// to the reader's next index).
func recordFailure(rr *xmlhedge.RecordReader, err error) *RecordError {
	fail := &RecordError{Index: rr.NextIndex(), Err: err}
	var le *xmlhedge.LimitError
	var pe *xmlhedge.RecordParseError
	switch {
	case errors.As(err, &le):
		fail.Index, fail.Path = le.Record, le.Path
	case errors.As(err, &pe):
		fail.Index, fail.Path = pe.Index, pe.Path
	}
	return fail
}

// runSequential is the single-worker hot loop: one arena, one Result, no
// goroutines — steady-state evaluation allocates nothing, with or without
// a metrics sink (timing is two clock reads per stage per record).
func runSequential(ctx context.Context, rr *xmlhedge.RecordReader, qs []*core.CompiledQuery, cfg Config, ms *metrics.Stream, sink *trace.EventSink, yield func(*Result) error) (Stats, error) {
	// The arena and Result ride in a pooled single-item batch so
	// back-to-back runs reuse warm storage: one short stream never
	// amortizes cold chunk growth on its own.
	st := getBatch(1)
	defer batchPool.Put(st)
	var (
		stats Stats
		t0    time.Time
	)
	arena, res := &st.arena, &st.items[0].res
	pol := cfg.OnRecordError
	tracing := sink.Enabled()
	timed := ms != nil || tracing
	commit := func(rt trace.RecordTrace) {
		rt.Events = sink.Drain()
		commitTrace(&cfg, rt)
	}
	for {
		if err := ctx.Err(); err != nil {
			stats.Bytes = rr.InputOffset()
			return stats, err
		}
		arena.Reset()
		if timed {
			t0 = time.Now()
		}
		rec, err := rr.Read(arena)
		var splitNS int64
		if timed {
			d := time.Since(t0)
			splitNS = int64(d)
			if ms != nil {
				ms.SplitTime.Observe(d)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			stats.Bytes = rr.InputOffset()
			splitTrace := func(outcome string, cause error) {
				if tracing {
					fail := recordFailure(rr, err)
					commit(trace.RecordTrace{Index: fail.Index, Path: fail.Path.String(),
						SplitNS: splitNS, Outcome: outcome, Error: cause.Error()})
				}
			}
			if pol == nil || !rr.CanRecover() {
				splitTrace("aborted", err)
				return stats, err
			}
			if perr := pol(recordFailure(rr, err)); perr != nil {
				splitTrace("aborted", perr)
				return stats, perr
			}
			stats.Skipped++
			if ms != nil {
				ms.RecordsSkipped.Inc()
			}
			splitTrace("skipped", err)
			if rerr := rr.Recover(); rerr != nil {
				return stats, rerr
			}
			continue
		}
		if timed {
			t0 = time.Now()
		}
		evalErr := safeEvaluate(qs, &rec, res, &cfg)
		var evalNS int64
		if timed {
			d := time.Since(t0)
			evalNS = int64(d)
			if ms != nil {
				ms.EvalTime.Observe(d)
				ms.RecordLatency.Observe(d)
			}
		}
		if evalErr != nil {
			if _, isPanic := evalErr.Err.(*PanicError); isPanic {
				stats.Recovered++
				if ms != nil {
					ms.PanicsRecovered.Inc()
				}
			}
			if errors.Is(evalErr.Err, ErrRecordTimeout) {
				stats.TimedOut++
				if ms != nil {
					ms.RecordsTimedOut.Inc()
				}
			}
			evalTrace := func(outcome string, cause error) {
				if tracing {
					commit(trace.RecordTrace{Index: res.Index, Path: res.Path.String(),
						SplitNS: splitNS, EvalNS: evalNS, Nodes: res.Nodes,
						Matches: len(res.Matches), Outcome: outcome, Error: cause.Error()})
				}
			}
			if pol == nil {
				stats.Bytes = rr.InputOffset()
				evalTrace("aborted", evalErr)
				return stats, evalErr
			}
			if perr := pol(evalErr); perr != nil {
				stats.Bytes = rr.InputOffset()
				evalTrace("aborted", perr)
				return stats, perr
			}
			stats.Skipped++
			if ms != nil {
				ms.RecordsSkipped.Inc()
			}
			evalTrace("skipped", evalErr)
			continue
		}
		stats.Records++
		stats.Nodes += int64(res.Nodes)
		stats.Matches += int64(len(res.Matches))
		if timed {
			t0 = time.Now()
		}
		err = yield(res)
		var deliverNS int64
		if timed {
			d := time.Since(t0)
			deliverNS = int64(d)
			if ms != nil {
				ms.DeliverTime.Observe(d)
			}
		}
		if tracing {
			commit(trace.RecordTrace{Index: res.Index, Path: res.Path.String(),
				SplitNS: splitNS, EvalNS: evalNS, DeliverNS: deliverNS,
				Nodes: res.Nodes, Matches: len(res.Matches), Outcome: "ok"})
		}
		if err != nil {
			stats.Bytes = rr.InputOffset()
			if errors.Is(err, ErrStop) {
				return stats, nil
			}
			return stats, err
		}
	}
	stats.Bytes = rr.InputOffset()
	return stats, nil
}

// defaultBatchSize is the auto records-per-handoff for parallel runs: big
// enough to amortize a channel exchange and a scheduler wakeup over many
// records, small enough that a batch of typical records stays cache- and
// memory-friendly.
const defaultBatchSize = 32

// batchItem is one record's slot in a batch: the parsed record and its
// evaluation result, both recycled with the batch.
type batchItem struct {
	rec xmlhedge.Record
	res Result
}

// batch is the unit of producer→worker→collector handoff: up to cap
// records parsed into the batch's own arena, sequence-numbered for the
// reorder ring. Batches are recycled through a free list, so a warm run
// allocates nothing per handoff.
type batch struct {
	seq   int
	n     int // items in use
	items []batchItem
	arena xmlhedge.Arena
}

// batchPool recycles batches across runs so short streams still evaluate
// into warm arenas: one Run sees only a handful of batches, far too few to
// amortize cold chunk and child-slice growth within the run itself.
var batchPool = sync.Pool{New: func() any { return new(batch) }}

// getBatch takes a pooled batch sized for batchSize items. items is
// allocated at full capacity once and never grown, so &items[i] pointers
// taken during fill and eval stay valid.
func getBatch(batchSize int) *batch {
	b := batchPool.Get().(*batch)
	if cap(b.items) < batchSize {
		b.items = make([]batchItem, batchSize)
	}
	b.items = b.items[:batchSize]
	return b
}

// runParallel fans batches of records out to a bounded worker pool and
// reorders them for in-order delivery. Batch objects (workers+2 of them,
// each owning one arena) are the memory bound: the producer blocks until a
// delivered batch is recycled. Workers publish finished batches into a
// sequence-indexed reorder ring with a non-blocking wakeup, so delivery
// order costs no per-record channel exchange and workers never block on a
// slow collector.
//
// Failure containment keeps the policy on the collector: evaluation
// failures replace the worker's matches on the item's Result; splitter
// failures become tombstone items closing out the current batch (so
// in-order delivery never stalls on the failed index) while the producer
// blocks on the tombstone's await channel for the verdict — recovery
// rewires the reader's state, so the producer cannot run ahead of the
// decision.
func runParallel(ctx context.Context, r io.Reader, ropts xmlhedge.RecordOptions, qs []*core.CompiledQuery, workers int, cfg Config, ms *metrics.Stream, sink *trace.EventSink, yield func(*Result) error) (Stats, error) {
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The splitter polls the internal context, so cancellation (external or
	// failure-induced) interrupts even a mid-record read.
	ropts.Ctx = ictx
	rr := xmlhedge.NewRecordReader(r, ropts)
	pol := cfg.OnRecordError
	tracing := sink.Enabled()
	timed := ms != nil || tracing
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = defaultBatchSize
	}

	nBatches := workers + 2
	free := make(chan *batch, nBatches)
	for i := 0; i < nBatches; i++ {
		free <- getBatch(batchSize)
	}
	jobs := make(chan *batch, nBatches)
	// Reorder ring: slot seq&ringMask holds the finished batch with that
	// sequence number. In-order recycling bounds the in-flight sequence
	// span to nBatches, and the ring is the next power of two above it, so
	// two live batches never share a slot.
	ringSize := 1
	for ringSize <= nBatches {
		ringSize <<= 1
	}
	ringMask := ringSize - 1
	ring := make([]atomic.Pointer[batch], ringSize)
	kick := make(chan struct{}, 1) // non-blocking wakeup: ring slot filled

	var (
		bytes    atomic.Int64
		pre      atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	// storeProgress publishes the producer's reader-side counters for the
	// collector; called at every producer exit path (see prodDone ordering).
	storeProgress := func() {
		bytes.Store(rr.InputOffset())
		pre.Store(rr.Prefiltered())
	}

	// Producer: split batches of records into recycled batch arenas.
	// prodDone orders the producer's final storeProgress before the
	// collector's loads — without it the collector could observe a stale
	// offset when cancellation ends the run mid-Read.
	prodDone := make(chan struct{})
	go pprof.Do(ictx, pprof.Labels("xpe.stage", "stream-split"), func(ictx context.Context) {
		defer close(prodDone)
		defer close(jobs)
		verdict := make(chan error, 1) // reused: at most one tombstone is outstanding
		seq := 0
		// flush hands the batch to the workers; jobs' capacity equals the
		// total batch count, so the send cannot block.
		flush := func(b *batch) {
			b.seq = seq
			seq++
			jobs <- b
		}
		var t0 time.Time
		for {
			var b *batch
			select {
			case b = <-free:
			case <-ictx.Done():
				storeProgress()
				return
			}
			b.arena.Reset()
			b.n = 0
			for b.n < batchSize {
				if timed {
					t0 = time.Now()
				}
				rec, err := rr.Read(&b.arena)
				var splitNS int64
				if timed {
					d := time.Since(t0)
					splitNS = int64(d)
					if ms != nil {
						ms.SplitTime.Observe(d)
					}
				}
				if err != nil {
					if err == io.EOF || ictx.Err() != nil {
						// EOF: ship what the batch holds and end the stream.
						// Cancellation: the run's outcome is decided
						// elsewhere; the partial batch is abandoned.
						if err == io.EOF && b.n > 0 {
							flush(b)
						} else {
							free <- b // cap nBatches: never blocks
						}
						storeProgress()
						return
					}
					if pol == nil || !rr.CanRecover() {
						// Stream-fatal: records already split still reach
						// delivery ahead of the abort.
						if b.n > 0 {
							flush(b)
						} else {
							free <- b
						}
						setErr(err)
						storeProgress()
						return
					}
					// Recoverable: close out the batch with a tombstone item
					// and wait for the collector's in-order verdict before
					// touching the reader again.
					fail := recordFailure(rr, err)
					it := &b.items[b.n]
					b.n++
					it.res.reset()
					it.res.Index, it.res.Path, it.res.Nodes = fail.Index, fail.Path, 0
					it.res.splitNS, it.res.evalNS, it.res.events = splitNS, 0, sink.Drain()
					it.res.fail = fail
					it.res.await = verdict
					flush(b)
					select {
					case d := <-verdict:
						if d != nil {
							// The collector aborted with the policy's error.
							storeProgress()
							return
						}
					case <-ictx.Done():
						storeProgress()
						return
					}
					if rerr := rr.Recover(); rerr != nil {
						if ictx.Err() == nil {
							setErr(rerr)
						}
						storeProgress()
						return
					}
					b = nil
					break // batch flushed with the tombstone; start a fresh one
				}
				it := &b.items[b.n]
				b.n++
				it.rec = rec
				// fail/await must be cleared here: the worker's tombstone
				// check reads them before safeEvaluate's reset runs.
				it.res.fail, it.res.await = nil, nil
				it.res.splitNS, it.res.evalNS, it.res.events = splitNS, 0, sink.Drain()
			}
			if b != nil {
				flush(b)
			}
		}
	})

	// Workers: evaluate batches; the mirror automaton and arenas inside cq
	// are concurrency-safe (locked / pooled). All stage-timer updates are
	// atomic (metrics.Timer), so concurrent flushes from workers and
	// snapshot reads race-cleanly. A panicking evaluation is contained in
	// safeEvaluate, so a worker goroutine never dies. Publishing is a ring
	// store plus an optional buffered wakeup — never a blocking send — so
	// workers drain jobs even when the collector has stopped consuming.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go pprof.Do(ictx, pprof.Labels("xpe.stage", "stream-eval", "xpe.worker", strconv.Itoa(w)), func(ictx context.Context) {
			defer wg.Done()
			var t0 time.Time
			for b := range jobs {
				for i := 0; i < b.n; i++ {
					it := &b.items[i]
					if it.res.fail != nil {
						continue // splitter tombstone: nothing to evaluate
					}
					if timed {
						t0 = time.Now()
					}
					if evalErr := safeEvaluate(qs, &it.rec, &it.res, &cfg); evalErr != nil {
						it.res.fail = evalErr
					}
					if timed {
						d := time.Since(t0)
						it.res.evalNS = int64(d)
						if ms != nil {
							ms.EvalTime.Observe(d)
							ms.RecordLatency.Observe(d)
						}
					}
				}
				ring[b.seq&ringMask].Store(b)
				select {
				case kick <- struct{}{}:
				default:
				}
			}
		})
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	// Collector (this goroutine): consume the ring in sequence order, apply
	// the error policy in document order, and deliver. Policy callbacks run
	// here only, so a user-supplied OnRecordError is never invoked
	// concurrently.
	var stats Stats
	var t0 time.Time
	failed := false
	// commit assembles a verdict-bearing record's trace from the
	// contributions stamped on the Result by the producer and worker.
	// Commits happen here only, so the ring sees records in delivery order
	// and OnSlow is never invoked concurrently.
	commit := func(r *Result, outcome string, cause error, deliverNS int64) {
		if !tracing {
			return
		}
		rt := trace.RecordTrace{Index: r.Index, Path: r.Path.String(),
			SplitNS: r.splitNS, EvalNS: r.evalNS, DeliverNS: deliverNS,
			Nodes: r.Nodes, Matches: len(r.Matches), Outcome: outcome,
			Events: r.events}
		if cause != nil {
			rt.Error = cause.Error()
		}
		commitTrace(&cfg, rt)
	}
	// processItem routes one in-order result: the failure policy for
	// tombstones and evaluation failures, the yield callback for healthy
	// records. In failed mode everything is drained undelivered; a blocked
	// tombstone producer is released by the cancellation, not by an answer.
	processItem := func(r *Result) {
		if failed {
			return
		}
		if r.fail != nil {
			rerr := r.fail.(*RecordError)
			if _, isPanic := rerr.Err.(*PanicError); isPanic {
				stats.Recovered++
				if ms != nil {
					ms.PanicsRecovered.Inc()
				}
			}
			if errors.Is(rerr.Err, ErrRecordTimeout) {
				stats.TimedOut++
				if ms != nil {
					ms.RecordsTimedOut.Inc()
				}
			}
			var verdict error
			if pol == nil {
				verdict = r.fail
			} else {
				verdict = pol(rerr)
			}
			if verdict == nil {
				stats.Skipped++
				if ms != nil {
					ms.RecordsSkipped.Inc()
				}
				commit(r, "skipped", rerr, 0)
			} else {
				commit(r, "aborted", verdict, 0)
			}
			if r.await != nil {
				r.await <- verdict
				r.await = nil
			}
			if verdict != nil {
				setErr(verdict)
				failed = true
			}
			return
		}
		stats.Records++
		stats.Nodes += int64(r.Nodes)
		stats.Matches += int64(len(r.Matches))
		if timed {
			t0 = time.Now()
		}
		err := yield(r)
		var deliverNS int64
		if timed {
			d := time.Since(t0)
			deliverNS = int64(d)
			if ms != nil {
				ms.DeliverTime.Observe(d)
			}
		}
		commit(r, "ok", nil, deliverNS)
		if err != nil {
			if !errors.Is(err, ErrStop) {
				setErr(err)
			}
			cancel()
			failed = true
		}
	}
	next := 0
	for {
		b := ring[next&ringMask].Load()
		if b == nil {
			select {
			case <-kick:
			case <-workersDone:
				if ring[next&ringMask].Load() == nil {
					// All workers exited and the next slot is still empty:
					// no batch with this sequence number is coming.
					goto drained
				}
			}
			continue
		}
		ring[next&ringMask].Store(nil)
		next++
		for i := 0; i < b.n; i++ {
			processItem(&b.items[i].res)
			b.items[i].res.events = nil
		}
		// Recycle: free's capacity equals the total batch count, so the
		// send cannot block even after the producer has exited.
		free <- b
	}
drained:
	// Workers exit only after jobs closes or cancellation fires; either way
	// the producer is on its way out, so this wait is bounded.
	<-prodDone
	// Return idle batches to the pool for the next run. Batches the
	// producer abandoned mid-cancellation are simply garbage-collected.
	for drainedFree := false; !drainedFree; {
		select {
		case b := <-free:
			batchPool.Put(b)
		default:
			drainedFree = true
		}
	}
	stats.Bytes = bytes.Load()
	stats.Prefiltered = pre.Load()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	return stats, err
}
