// Package stream evaluates a compiled selection query over an XML input
// stream record by record: the input is split into records (top-level
// children of the document element, or subtrees rooted at a configured
// split element), each record is parsed into a recycled arena-backed hedge
// and evaluated with Algorithm 1, and the per-record results are delivered
// through a callback in document order — as soon as each record completes.
//
// Peak memory is O(largest record × in-flight records), never O(document):
// with W workers at most W+1 record arenas exist, and a single-worker run
// holds exactly one. Records are independent evaluation units — each is
// treated as its own document, so a query's envelope conditions range over
// the record subtree only (the paper's Algorithm 1 run per record). That is
// the semantics that admits single-pass bounded-memory evaluation: sibling
// conditions of record ancestors would need the not-yet-read remainder of
// the document.
package stream

import (
	"context"
	"errors"
	"io"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xpe/internal/core"
	"xpe/internal/hedge"
	"xpe/internal/metrics"
	"xpe/internal/xmlhedge"
)

// Config tunes a streaming run; the zero value is the default
// configuration.
type Config struct {
	// Split names the record root element; empty splits at the document
	// element's children (see xmlhedge.RecordOptions.Split).
	Split string
	// Workers is the number of concurrent evaluation workers; <=0 means
	// GOMAXPROCS. Results are delivered in document order regardless.
	Workers int
	// MaxRecordNodes / MaxRecordDepth bound individual records (0 =
	// unlimited); a violating record aborts the stream with
	// *xmlhedge.LimitError.
	MaxRecordNodes int
	MaxRecordDepth int
	// KeepWhitespace retains whitespace-only text nodes.
	KeepWhitespace bool
	// Metrics, when non-nil, receives live instrumentation: splitter
	// counters (Metrics.Split, flushed per record by the RecordReader) and
	// per-stage timings plus worker occupancy (Metrics.Stream). Evaluation
	// counters flow through the sink attached to cq (see
	// core.CompiledQuery.SetMetrics). Timing costs two monotonic clock
	// reads per stage per record when attached and one nil check when not.
	Metrics *metrics.Metrics
}

// Stats aggregates one streaming run.
type Stats struct {
	Records int64 // records evaluated and delivered
	Nodes   int64 // total nodes across delivered records
	Matches int64 // total located nodes
	Bytes   int64 // input bytes consumed by the XML decoder
}

// Match is one located node within a record.
type Match struct {
	// Path is the record-relative Dewey path (the record root is node 1).
	Path hedge.Path
	// Node is the located node; like Result.Hedge it is arena-backed and
	// valid only until the yield callback returns.
	Node *hedge.Node
}

// Result is one evaluated record.
type Result struct {
	// Index is the 0-based record sequence number.
	Index int
	// Path is the Dewey path of the record root within the input document.
	Path hedge.Path
	// Nodes is the record's node count.
	Nodes int
	// Matches lists the located nodes in document order.
	Matches []Match

	pathBuf []int
	arena   *xmlhedge.Arena
}

// reset prepares a recycled Result for reuse.
func (r *Result) reset() {
	r.Matches = r.Matches[:0]
	r.pathBuf = r.pathBuf[:0]
}

// addMatch copies the (reused) path into the result's backing buffer and
// appends a match.
func (r *Result) addMatch(p hedge.Path, n *hedge.Node) {
	start := len(r.pathBuf)
	r.pathBuf = append(r.pathBuf, p...)
	r.Matches = append(r.Matches, Match{Path: r.pathBuf[start:len(r.pathBuf):len(r.pathBuf)], Node: n})
}

// ErrStop, returned by a yield callback, ends the stream early with no
// error (mirroring fs.SkipAll).
var ErrStop = errors.New("stream: stop")

// Run streams records from r, evaluates cq on each, and calls yield once
// per record in document order. Hedge nodes referenced by the Result are
// recycled: they are valid only until yield returns. Run returns the stats
// accumulated over delivered records and the first error among: a parse or
// limit error from the splitter, a yield error (ErrStop is filtered to
// nil), or ctx cancellation.
//
// cq must be resolved against the alphabet generation the caller wants
// before Run is entered: the compilation is shared by every worker and is
// never revalidated or recompiled per record (the facade resolves it once,
// pre-fork).
func Run(ctx context.Context, r io.Reader, cq *core.CompiledQuery, cfg Config, yield func(*Result) error) (Stats, error) {
	ropts := xmlhedge.RecordOptions{
		Split:          cfg.Split,
		MaxNodes:       cfg.MaxRecordNodes,
		MaxDepth:       cfg.MaxRecordDepth,
		KeepWhitespace: cfg.KeepWhitespace,
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var ms *metrics.Stream
	if cfg.Metrics != nil {
		ropts.Metrics = &cfg.Metrics.Split
		ms = &cfg.Metrics.Stream
		ms.Runs.Inc()
		ms.Workers.Set(int64(workers))
		start := time.Now()
		defer func() { ms.WallTime.Observe(time.Since(start)) }()
	}
	rr := xmlhedge.NewRecordReader(r, ropts)
	if workers <= 1 {
		return runSequential(ctx, rr, cq, ms, yield)
	}
	return runParallel(ctx, rr, cq, workers, ms, yield)
}

// evaluate runs the query over one parsed record.
func evaluate(cq *core.CompiledQuery, rec *xmlhedge.Record, res *Result) {
	res.reset()
	res.Index, res.Path, res.Nodes = rec.Index, rec.Path, rec.Nodes
	cq.SelectEach(rec.Hedge, func(p hedge.Path, n *hedge.Node) bool {
		res.addMatch(p, n)
		return true
	})
}

// runSequential is the single-worker hot loop: one arena, one Result, no
// goroutines — steady-state evaluation allocates nothing, with or without
// a metrics sink (timing is two clock reads per stage per record).
func runSequential(ctx context.Context, rr *xmlhedge.RecordReader, cq *core.CompiledQuery, ms *metrics.Stream, yield func(*Result) error) (Stats, error) {
	var (
		stats Stats
		arena xmlhedge.Arena
		res   Result
		t0    time.Time
	)
	for {
		if err := ctx.Err(); err != nil {
			stats.Bytes = rr.InputOffset()
			return stats, err
		}
		arena.Reset()
		if ms != nil {
			t0 = time.Now()
		}
		rec, err := rr.Read(&arena)
		if ms != nil {
			ms.SplitTime.Observe(time.Since(t0))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			stats.Bytes = rr.InputOffset()
			return stats, err
		}
		if ms != nil {
			t0 = time.Now()
		}
		evaluate(cq, &rec, &res)
		if ms != nil {
			d := time.Since(t0)
			ms.EvalTime.Observe(d)
			ms.RecordLatency.Observe(d)
		}
		stats.Records++
		stats.Nodes += int64(res.Nodes)
		stats.Matches += int64(len(res.Matches))
		if ms != nil {
			t0 = time.Now()
		}
		err = yield(&res)
		if ms != nil {
			ms.DeliverTime.Observe(time.Since(t0))
		}
		if err != nil {
			stats.Bytes = rr.InputOffset()
			if err == ErrStop {
				return stats, nil
			}
			return stats, err
		}
	}
	stats.Bytes = rr.InputOffset()
	return stats, nil
}

// runParallel fans records out to a bounded worker pool and reorders the
// results for in-order delivery. The arena pool (workers+1 arenas) is the
// memory bound: the producer blocks until a delivered record's arena is
// recycled.
func runParallel(ctx context.Context, rr *xmlhedge.RecordReader, cq *core.CompiledQuery, workers int, ms *metrics.Stream, yield func(*Result) error) (Stats, error) {
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	nArenas := workers + 1
	free := make(chan *xmlhedge.Arena, nArenas)
	for i := 0; i < nArenas; i++ {
		free <- &xmlhedge.Arena{}
	}
	type job struct {
		rec xmlhedge.Record
		res *Result
	}
	jobs := make(chan job, nArenas)
	done := make(chan *Result, nArenas)
	resPool := sync.Pool{New: func() any { return &Result{} }}

	var (
		bytes    atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	// Producer: split records into recycled arenas. prodDone orders the
	// producer's final bytes.Store before the collector's bytes.Load —
	// without it the collector could observe a stale offset when
	// cancellation ends the run while a Read is still in flight.
	prodDone := make(chan struct{})
	go pprof.Do(ictx, pprof.Labels("xpe.stage", "stream-split"), func(ictx context.Context) {
		defer close(prodDone)
		defer close(jobs)
		var t0 time.Time
		for {
			var arena *xmlhedge.Arena
			select {
			case arena = <-free:
			case <-ictx.Done():
				bytes.Store(rr.InputOffset())
				return
			}
			arena.Reset()
			if ms != nil {
				t0 = time.Now()
			}
			rec, err := rr.Read(arena)
			if ms != nil {
				ms.SplitTime.Observe(time.Since(t0))
			}
			if err != nil {
				if err != io.EOF {
					setErr(err)
				}
				bytes.Store(rr.InputOffset())
				return
			}
			res := resPool.Get().(*Result)
			res.arena = arena
			select {
			case jobs <- job{rec: rec, res: res}:
			case <-ictx.Done():
				bytes.Store(rr.InputOffset())
				return
			}
		}
	})

	// Workers: evaluate records; the mirror automaton and arenas inside cq
	// are concurrency-safe (locked / pooled). All stage-timer updates are
	// atomic (metrics.Timer), so concurrent flushes from workers and
	// snapshot reads race-cleanly.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go pprof.Do(ictx, pprof.Labels("xpe.stage", "stream-eval", "xpe.worker", strconv.Itoa(w)), func(ictx context.Context) {
			defer wg.Done()
			var t0 time.Time
			for j := range jobs {
				if ms != nil {
					t0 = time.Now()
				}
				evaluate(cq, &j.rec, j.res)
				if ms != nil {
					d := time.Since(t0)
					ms.EvalTime.Observe(d)
					ms.RecordLatency.Observe(d)
				}
				select {
				case done <- j.res:
				case <-ictx.Done():
					return
				}
			}
		})
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// Collector (this goroutine): reorder and deliver.
	var stats Stats
	var t0 time.Time
	pending := map[int]*Result{}
	next := 0
	failed := false
	for res := range done {
		pending[res.Index] = res
		for !failed {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			stats.Records++
			stats.Nodes += int64(r.Nodes)
			stats.Matches += int64(len(r.Matches))
			if ms != nil {
				t0 = time.Now()
			}
			err := yield(r)
			if ms != nil {
				ms.DeliverTime.Observe(time.Since(t0))
			}
			free <- r.arena
			r.arena = nil
			resPool.Put(r)
			if err != nil {
				if err != ErrStop {
					setErr(err)
				}
				cancel()
				failed = true
			}
		}
		if failed {
			// Keep draining so workers and the producer can exit; recycle
			// without delivering.
			for idx, r := range pending {
				delete(pending, idx)
				free <- r.arena
				r.arena = nil
				resPool.Put(r)
			}
		}
	}
	// done is closed once all workers exit, which happens only after jobs
	// closes or cancellation fires; either way the producer is on its way
	// out, so this wait is bounded.
	<-prodDone
	stats.Bytes = bytes.Load()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	return stats, err
}
