package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xpe/internal/faultinject"
	"xpe/internal/ha"
	"xpe/internal/trace"
)

// batchSizes sweeps the handoff granularities the batched pipeline must be
// correct under: record-at-a-time, tiny, prime (batch boundaries land
// everywhere), the default, and larger-than-stream.
var batchSizes = []int{1, 2, 7, 32, 100}

func TestBatchSizesPreserveOrderAndSkips(t *testing.T) {
	// Exact in-order delivery and document-order policy consultation must
	// be invariant over the batch size, with faults landing on batch
	// boundaries and in batch interiors alike: malformed records (splitter
	// tombstones close a batch early), panics (worker-side failures travel
	// inside batches), a limit violation, and a truncated tail.
	spec := faultinject.FeedSpec{
		Records:   90,
		Malformed: map[int]bool{0: true, 7: true, 31: true, 32: true, 64: true},
		Oversized: map[int]int{40: 50},
		Truncated: true,
	}
	panicked := []int{13, 33, 77}
	for _, bs := range batchSizes {
		inject := faultinject.NewEvalFaults().PanicOn(panicked...)
		delivered, fails, stats := runSkip(t, spec,
			Config{Workers: 4, BatchSize: bs, MaxRecordNodes: 10}, inject)
		want := []int{}
		for _, id := range spec.HealthyIDs() {
			if id != 13 && id != 33 && id != 77 {
				want = append(want, id)
			}
		}
		wantIDs(t, fmt.Sprintf("batch=%d delivered", bs), delivered, want)
		// 5 malformed + 1 oversized + 3 panicked + 1 truncated tail.
		if stats.Skipped != 10 || len(fails) != 10 {
			t.Fatalf("batch=%d: skipped=%d fails=%d, want 10/10", bs, stats.Skipped, len(fails))
		}
		if stats.Recovered != 3 {
			t.Fatalf("batch=%d: recovered = %d, want 3", bs, stats.Recovered)
		}
		for i := 1; i < len(fails); i++ {
			if fails[i].Index <= fails[i-1].Index {
				t.Fatalf("batch=%d: policy order violated: %d then %d", bs, fails[i-1].Index, fails[i].Index)
			}
		}
	}
}

func TestBatchTraceOneVerdictPerRecord(t *testing.T) {
	// The one-trace-per-verdict contract survives batching: every record
	// appears exactly once in the flight recorder with the right outcome,
	// whatever batch the verdict traveled in.
	spec := faultinject.FeedSpec{
		Records:   40,
		Malformed: map[int]bool{3: true, 32: true},
	}
	skipped := map[int]bool{3: true, 6: true, 32: true}
	for _, bs := range batchSizes {
		tr := trace.New(64)
		inject := faultinject.NewEvalFaults().PanicOn(6)
		_, _, stats := runSkip(t, spec, Config{Workers: 4, BatchSize: bs, Trace: tr}, inject)
		if stats.Skipped != 3 {
			t.Fatalf("batch=%d: skipped = %d, want 3", bs, stats.Skipped)
		}
		if tr.Total() != int64(spec.Records) {
			t.Fatalf("batch=%d: committed %d traces, want %d", bs, tr.Total(), spec.Records)
		}
		byIdx := traceByIndex(t, tr)
		for i := 0; i < spec.Records; i++ {
			rt, ok := byIdx[i]
			if !ok {
				t.Fatalf("batch=%d: record %d has no trace", bs, i)
			}
			if skipped[i] {
				if rt.Outcome != "skipped" || rt.Error == "" {
					t.Fatalf("batch=%d: record %d trace = %+v, want skipped with an error", bs, i, rt)
				}
			} else if rt.Outcome != "ok" || rt.Matches != 1 {
				t.Fatalf("batch=%d: record %d trace = %+v, want ok with 1 match", bs, i, rt)
			}
		}
	}
}

func TestBatchPolicyAbortStopsDelivery(t *testing.T) {
	// An aborting policy ends the run with its error and nothing past the
	// aborting record is delivered, regardless of how many records the
	// producer had batched ahead.
	spec := faultinject.FeedSpec{Records: 50, Malformed: map[int]bool{5: true, 12: true}}
	cq := chaosQuery(t)
	giveUp := errors.New("two strikes")
	for _, bs := range batchSizes {
		seen := 0
		var delivered []int
		_, err := Run(context.Background(), spec.Reader(), cq,
			Config{
				Workers: 4, BatchSize: bs, Split: spec.SplitName(),
				OnRecordError: func(e *RecordError) error {
					if seen++; seen == 2 {
						return giveUp
					}
					return nil
				},
			},
			func(r *Result) error { delivered = append(delivered, r.Index); return nil })
		if !errors.Is(err, giveUp) {
			t.Fatalf("batch=%d: err = %v, want the policy's error", bs, err)
		}
		for _, idx := range delivered {
			if idx > 12 {
				t.Fatalf("batch=%d: record %d delivered after the aborting failure", bs, idx)
			}
		}
	}
}

func TestBatchEarlyStopPartialBatch(t *testing.T) {
	// ErrStop from the yield callback mid-batch ends the stream cleanly
	// with exact accounting, even when undelivered records sit behind it
	// in the same batch and in batches already handed to workers.
	input := feed(200)
	cq := compile(t, ha.NewNames(), "[* ; a ; b .] entry")
	for _, bs := range batchSizes {
		seen := 0
		stats, err := Run(context.Background(), strings.NewReader(input), cq,
			Config{Workers: 4, BatchSize: bs},
			func(r *Result) error {
				if seen++; seen == 5 {
					return ErrStop
				}
				return nil
			})
		if err != nil {
			t.Fatalf("batch=%d: err = %v, want nil for ErrStop", bs, err)
		}
		if stats.Records != 5 {
			t.Fatalf("batch=%d: records = %d, want 5", bs, stats.Records)
		}
	}
}

func TestBatchRecoveryAcrossBatchBoundary(t *testing.T) {
	// A malformed record flushes a partial batch and parks the producer on
	// the verdict; recovery must resume splitting into a fresh batch with
	// no record lost or duplicated. Back-to-back malformations exercise
	// repeated tombstone flushes.
	spec := faultinject.FeedSpec{
		Records:   30,
		Malformed: map[int]bool{10: true, 11: true, 12: true},
	}
	for _, bs := range batchSizes {
		delivered, fails, stats := runSkip(t, spec, Config{Workers: 4, BatchSize: bs}, nil)
		wantIDs(t, fmt.Sprintf("batch=%d delivered", bs), delivered, spec.HealthyIDs())
		if len(fails) != 3 || stats.Skipped != 3 {
			t.Fatalf("batch=%d: fails=%d skipped=%d, want 3", bs, len(fails), stats.Skipped)
		}
	}
}
