package stream

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/xmlhedge"
)

// priceFeed builds a multi-record document where only every k-th entry
// contains a <price> element — a low-selectivity feed for the prefilter.
func priceFeed(n, k int) string {
	var b strings.Builder
	b.WriteString("<feed>")
	for i := 0; i < n; i++ {
		if i%k == 0 {
			fmt.Fprintf(&b, "<entry><name>item %d</name><price>%d</price></entry>", i, i)
		} else {
			fmt.Fprintf(&b, "<entry><name>item %d</name><note>n/a &amp; counting</note></entry>", i)
		}
	}
	b.WriteString("</feed>")
	return b.String()
}

// runCollect streams input and returns per-record delivered results: the
// set of delivered record indices and the rendered matches.
func runCollect(t *testing.T, input string, cq *core.CompiledQuery, cfg Config) (map[int]bool, []string, Stats) {
	t.Helper()
	delivered := map[int]bool{}
	var matches []string
	stats, err := Run(context.Background(), strings.NewReader(input), cq, cfg,
		func(r *Result) error {
			delivered[r.Index] = true
			for _, m := range r.Matches {
				matches = append(matches, fmt.Sprintf("%d:%s:%s:%s", r.Index, r.Path, m.Path, m.Node.Name))
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return delivered, matches, stats
}

// TestRunPrefilterEquivalence is the stream-level half of the differential
// harness: for every (workers, batch size) combination the prefiltered run
// must deliver exactly the matches of the unfiltered run, records must only
// move from "delivered" to "prefiltered" (never vanish), and every record
// the skim dropped must evaluate to zero matches when forced through the
// normal parse+eval path.
func TestRunPrefilterEquivalence(t *testing.T) {
	const n = 120
	input := priceFeed(n, 5)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; price ; *] entry")
	if len(cq.RequiredLabels()) == 0 {
		t.Fatal("query has no required labels; prefilter cannot engage")
	}

	// Reference: the unfiltered sequential run.
	offCfg := Config{Workers: 1, Prefilter: PrefilterOff}
	offDelivered, offMatches, offStats := runCollect(t, input, cq, offCfg)
	if offStats.Prefiltered != 0 {
		t.Fatalf("prefilter off: Prefiltered = %d", offStats.Prefiltered)
	}
	if len(offMatches) == 0 {
		t.Fatal("reference run located nothing; test is vacuous")
	}

	// Records the whole document once so skipped records can be force-fed
	// through the normal evaluation path.
	whole := xmlhedge.MustParseString(input)

	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 32, 100} {
			name := fmt.Sprintf("workers=%d/batch=%d", workers, batch)
			cfg := Config{Workers: workers, BatchSize: batch}
			onDelivered, onMatches, onStats := runCollect(t, input, cq, cfg)

			if len(onMatches) != len(offMatches) {
				t.Fatalf("%s: %d matches with prefilter, want %d", name, len(onMatches), len(offMatches))
			}
			for i := range onMatches {
				if onMatches[i] != offMatches[i] {
					t.Fatalf("%s: match %d = %s, want %s", name, i, onMatches[i], offMatches[i])
				}
			}
			if onStats.Prefiltered == 0 {
				t.Errorf("%s: prefilter never engaged on a low-selectivity feed", name)
			}
			if got := onStats.Records + onStats.Prefiltered; got != offStats.Records {
				t.Errorf("%s: Records+Prefiltered = %d, want %d", name, got, offStats.Records)
			}
			if onStats.Matches != offStats.Matches {
				t.Errorf("%s: Matches = %d, want %d", name, onStats.Matches, offStats.Matches)
			}
			if onStats.Bytes != offStats.Bytes {
				t.Errorf("%s: Bytes = %d, want %d", name, onStats.Bytes, offStats.Bytes)
			}

			// Every record the skim dropped must be (a) delivered by the
			// unfiltered run and (b) a genuine non-match under full parse+eval.
			skipped := 0
			for idx := range offDelivered {
				if onDelivered[idx] {
					continue
				}
				skipped++
				rec := whole[0].Children[idx]
				res := cq.Select(append(whole[:0:0], rec))
				if len(res.Paths) != 0 {
					t.Errorf("%s: prefilter dropped record %d which matches at %v", name, idx, res.Paths)
				}
			}
			if int64(skipped) != onStats.Prefiltered {
				t.Errorf("%s: %d records missing from delivery, Prefiltered = %d", name, skipped, onStats.Prefiltered)
			}
			for idx := range onDelivered {
				if !offDelivered[idx] {
					t.Errorf("%s: record %d delivered only with the prefilter on", name, idx)
				}
			}
		}
	}
}

// TestRunPrefilterNoRequiredLabels: a query with an empty requirement set
// must leave the cascade disengaged (NewPrefilter returns nil) and deliver
// every record.
func TestRunPrefilterNoRequiredLabels(t *testing.T) {
	input := priceFeed(30, 3)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; price ; *] | [. ; note ; .]")
	// price|note intersects to ∅ at the top level... unless both branches
	// require "entry"-free sets; assert whatever the extraction yields and
	// adapt: the test only demands consistency between labels and stats.
	_, matches, stats := runCollect(t, input, cq, Config{Workers: 1})
	_, offMatches, _ := runCollect(t, input, cq, Config{Workers: 1, Prefilter: PrefilterOff})
	if len(matches) != len(offMatches) {
		t.Fatalf("prefilter changed match count: %d vs %d", len(matches), len(offMatches))
	}
	if len(cq.RequiredLabels()) == 0 && stats.Prefiltered != 0 {
		t.Fatalf("no required labels but Prefiltered = %d", stats.Prefiltered)
	}
}

// TestRunPrefilterLazyStats: a lazily determinized compilation reports its
// per-run state-construction deltas through Stats.
func TestRunPrefilterLazyStats(t *testing.T) {
	input := priceFeed(60, 4)
	names := ha.NewNames()
	// '.' sides (unlike the unconditioned '*') compile real side automata,
	// which is what lazy determinization defers.
	q, err := core.ParseQuery("[. ; price ; .] entry")
	if err != nil {
		t.Fatal(err)
	}
	cq, err := core.CompileQueryOpt(q, names, core.Options{LazyDeterminize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cq.Lazy() {
		t.Fatal("compilation is not lazy")
	}

	_, matches, stats := runCollect(t, input, cq, Config{Workers: 1})
	if stats.LazyStates == 0 {
		t.Errorf("lazy run built no states: %+v", stats)
	}
	if stats.Prefiltered == 0 {
		t.Errorf("prefilter disengaged under lazy compilation: %+v", stats)
	}

	// Differential: lazy+prefilter delivers the eager unfiltered match set.
	eager := compile(t, names, "[. ; price ; .] entry")
	_, want, eagerStats := runCollect(t, input, eager, Config{Workers: 1, Prefilter: PrefilterOff})
	if len(matches) != len(want) {
		t.Fatalf("lazy+prefilter: %d matches, eager unfiltered: %d", len(matches), len(want))
	}
	for i := range matches {
		if matches[i] != want[i] {
			t.Fatalf("match %d: %s vs %s", i, matches[i], want[i])
		}
	}
	if eagerStats.LazyStates != 0 {
		t.Errorf("eager run reported lazy states: %+v", eagerStats)
	}

	// A second run over the same compilation reuses the cached transitions:
	// its delta must be hits-heavy, not construction-heavy.
	_, _, again := runCollect(t, input, cq, Config{Workers: 1})
	if again.LazyStates > stats.LazyStates {
		t.Errorf("second run built more states (%d) than the first (%d)", again.LazyStates, stats.LazyStates)
	}
	if again.LazyHits == 0 {
		t.Errorf("second run recorded no cache hits: %+v", again)
	}
}

// TestRunPrefilterWithChaos: prefilter skips interleaved with malformed
// records must not disturb the skip/recover bookkeeping — the filtered and
// unfiltered runs agree on delivered records, matches, and failure counts.
func TestRunPrefilterWithChaos(t *testing.T) {
	var b strings.Builder
	b.WriteString("<feed>")
	for i := 0; i < 40; i++ {
		switch {
		case i%10 == 3:
			b.WriteString("<entry><price>7</price><oops></entry>") // malformed: unclosed child
		case i%4 == 0:
			fmt.Fprintf(&b, "<entry><price>%d</price></entry>", i)
		default:
			fmt.Fprintf(&b, "<entry><note>%d</note></entry>", i)
		}
	}
	b.WriteString("</feed>")
	input := b.String()

	names := ha.NewNames()
	cq := compile(t, names, "[* ; price ; *] entry")
	pol := func(*RecordError) error { return nil } // skip all failures

	run := func(mode PrefilterMode, workers int) (map[int]bool, []string, Stats) {
		cfg := Config{Workers: workers, Split: "entry", OnRecordError: pol, Prefilter: mode}
		return runCollect(t, input, cq, cfg)
	}

	offDelivered, offMatches, offStats := run(PrefilterOff, 1)
	for _, workers := range []int{1, 4} {
		onDelivered, onMatches, onStats := run(PrefilterAuto, workers)
		name := fmt.Sprintf("workers=%d", workers)
		if len(onMatches) != len(offMatches) {
			t.Fatalf("%s: %d matches, want %d", name, len(onMatches), len(offMatches))
		}
		for i := range onMatches {
			if onMatches[i] != offMatches[i] {
				t.Fatalf("%s: match %d = %s, want %s", name, i, onMatches[i], offMatches[i])
			}
		}
		if onStats.Skipped != offStats.Skipped {
			t.Errorf("%s: Skipped = %d, want %d", name, onStats.Skipped, offStats.Skipped)
		}
		if got := onStats.Records + onStats.Prefiltered; got != offStats.Records {
			t.Errorf("%s: Records+Prefiltered = %d, want %d", name, got, offStats.Records)
		}
		if onStats.Prefiltered == 0 {
			t.Errorf("%s: prefilter never engaged", name)
		}
		for idx := range onDelivered {
			if !offDelivered[idx] {
				t.Errorf("%s: record %d delivered only with the prefilter on", name, idx)
			}
		}
	}
}

// TestRunPrefilterTruncatedFeed: a stream cut off mid-record fails
// identically with the prefilter on and off — same terminal error, same
// matches, and the prefilter still skips the healthy label-free records
// that preceded the cut.
func TestRunPrefilterTruncatedFeed(t *testing.T) {
	full := priceFeed(30, 5)
	input := full[:len(full)-len("</entry></feed>")-10] // cut inside the last entry
	names := ha.NewNames()
	cq := compile(t, names, "[* ; price ; *] entry")

	run := func(mode PrefilterMode) ([]string, Stats, error) {
		var matches []string
		stats, err := Run(context.Background(), strings.NewReader(input), cq,
			Config{Workers: 1, Prefilter: mode},
			func(r *Result) error {
				for _, m := range r.Matches {
					matches = append(matches, fmt.Sprintf("%d:%s", r.Index, m.Path))
				}
				return nil
			})
		return matches, stats, err
	}

	offMatches, offStats, offErr := run(PrefilterOff)
	onMatches, onStats, onErr := run(PrefilterAuto)
	if offErr == nil || onErr == nil {
		t.Fatalf("truncated feed did not fail: off=%v on=%v", offErr, onErr)
	}
	if offErr.Error() != onErr.Error() {
		t.Fatalf("terminal errors differ:\noff: %v\non:  %v", offErr, onErr)
	}
	if fmt.Sprint(onMatches) != fmt.Sprint(offMatches) {
		t.Fatalf("matches differ: %v vs %v", onMatches, offMatches)
	}
	if onStats.Prefiltered == 0 {
		t.Errorf("prefilter never engaged before the cut: %+v", onStats)
	}
	if got := onStats.Records + onStats.Prefiltered; got != offStats.Records {
		t.Errorf("Records+Prefiltered = %d, want %d", got, offStats.Records)
	}
}
