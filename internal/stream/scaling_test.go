package stream

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"xpe/internal/ha"
)

// TestParallelScaling asserts the batched pipeline actually scales: on a
// synthetic 100k-record feed, four workers must clear at least 1.5× the
// single-worker throughput. Best-of-3 per worker count damps scheduler
// noise; boxes without real parallelism (or -short runs) skip, since no
// pipeline can beat Amdahl on one core.
func TestParallelScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("need 4 CPUs for a meaningful scaling run, have GOMAXPROCS=%d NumCPU=%d",
			runtime.GOMAXPROCS(0), runtime.NumCPU())
	}

	input := feed(100_000)
	cq := compile(t, ha.NewNames(), "[* ; a ; b .] entry")

	nodesPerSec := func(workers int) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			stats, err := Run(context.Background(), strings.NewReader(input), cq,
				Config{Workers: workers}, func(r *Result) error { return nil })
			wall := time.Since(t0)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if nps := float64(stats.Nodes) / wall.Seconds(); nps > best {
				best = nps
			}
		}
		return best
	}

	w1 := nodesPerSec(1)
	w4 := nodesPerSec(4)
	t.Logf("w1 = %.0f nodes/sec, w4 = %.0f nodes/sec (%.2fx)", w1, w4, w4/w1)
	if w4 < 1.5*w1 {
		t.Errorf("w4 throughput %.0f nodes/sec is under 1.5x w1's %.0f (%.2fx)", w4, w1, w4/w1)
	}
}
