package stream

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/xmlhedge"
)

func compile(t testing.TB, names *ha.Names, src string) *core.CompiledQuery {
	t.Helper()
	q, err := core.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := core.CompileQuery(q, names)
	if err != nil {
		t.Fatal(err)
	}
	return cq
}

// feed builds a multi-record document: entries holding a/b children where
// every third entry has the b-after-a shape the test query locates.
func feed(n int) string {
	var b strings.Builder
	b.WriteString("<feed>")
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			b.WriteString("<entry><a/><b/></entry>")
		} else {
			b.WriteString("<entry><b/><a/></entry>")
		}
	}
	b.WriteString("</feed>")
	return b.String()
}

// collectRun streams input and renders each delivered match as
// "recordIndex:path" for comparison.
func collectRun(t *testing.T, input string, cq *core.CompiledQuery, cfg Config) ([]string, Stats) {
	t.Helper()
	var got []string
	stats, err := Run(context.Background(), strings.NewReader(input), cq, cfg,
		func(r *Result) error {
			for _, m := range r.Matches {
				got = append(got, fmt.Sprintf("%d:%s:%s", r.Index, m.Path, m.Node.Name))
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestRunMatchesInMemorySelect(t *testing.T) {
	const n = 50
	input := feed(n)
	names := ha.NewNames()
	// "a immediately followed by b, directly under the entry root".
	cq := compile(t, names, "[* ; a ; b .] entry")

	// Reference: per-record in-memory evaluation.
	var want []string
	whole := xmlhedge.MustParseString(input)
	for i, rec := range whole[0].Children {
		res := cq.Select(append(whole[:0:0], rec))
		for _, p := range res.Paths {
			want = append(want, fmt.Sprintf("%d:%s:%s", i, p, whole[0].Children[i].Children[p[1]].Name))
		}
	}

	for _, workers := range []int{1, 4} {
		got, stats := collectRun(t, input, cq, Config{Workers: workers})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d matches, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: match %d = %s, want %s", workers, i, got[i], want[i])
			}
		}
		if stats.Records != n {
			t.Errorf("workers=%d: records = %d, want %d", workers, stats.Records, n)
		}
		if stats.Matches != int64(len(want)) {
			t.Errorf("workers=%d: matches = %d, want %d", workers, stats.Matches, len(want))
		}
		if stats.Bytes == 0 || stats.Nodes != int64(3*n) {
			t.Errorf("workers=%d: stats = %+v", workers, stats)
		}
	}
}

func TestRunDeliversInOrder(t *testing.T) {
	const n = 200
	input := feed(n)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; a ; b .] entry")
	next := 0
	_, err := Run(context.Background(), strings.NewReader(input), cq, Config{Workers: 8},
		func(r *Result) error {
			if r.Index != next {
				t.Fatalf("record %d delivered, want %d", r.Index, next)
			}
			next++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("delivered %d records, want %d", next, n)
	}
}

func TestRunErrStop(t *testing.T) {
	input := feed(30)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; a ; b .] entry")
	for _, workers := range []int{1, 4} {
		seen := 0
		stats, err := Run(context.Background(), strings.NewReader(input), cq, Config{Workers: workers},
			func(r *Result) error {
				seen++
				if seen == 5 {
					return ErrStop
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if seen != 5 || stats.Records != 5 {
			t.Fatalf("workers=%d: seen=%d records=%d, want 5", workers, seen, stats.Records)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	input := feed(100)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; a ; b .] entry")
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		delivered := 0
		_, err := Run(ctx, strings.NewReader(input), cq, Config{Workers: workers},
			func(r *Result) error {
				delivered++
				if delivered == 3 {
					cancel()
				}
				return nil
			})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestRunYieldError(t *testing.T) {
	input := feed(20)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; a ; b .] entry")
	boom := fmt.Errorf("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), strings.NewReader(input), cq, Config{Workers: workers},
			func(r *Result) error { return boom })
		if err != boom {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestRunExplainWitness(t *testing.T) {
	// Explain mode locates exactly what plain evaluation does, with each
	// match carrying a witness whose path agrees with the match and whose
	// levels walk the located node's spine.
	input := feed(30)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; a ; b .] entry")
	plain, _ := collectRun(t, input, cq, Config{Workers: 1})
	for _, workers := range []int{1, 4} {
		var got []string
		_, err := Run(context.Background(), strings.NewReader(input), cq,
			Config{Workers: workers, Explain: true},
			func(r *Result) error {
				for _, m := range r.Matches {
					if m.Witness == nil {
						t.Fatalf("workers=%d: record %d match %s has no witness", workers, r.Index, m.Path)
					}
					if m.Witness.Path.String() != m.Path.String() {
						t.Fatalf("workers=%d: witness path %s, match path %s", workers, m.Witness.Path, m.Path)
					}
					if len(m.Witness.Levels) != len(m.Path) {
						t.Fatalf("workers=%d: witness has %d levels for path %s",
							workers, len(m.Witness.Levels), m.Path)
					}
					got = append(got, fmt.Sprintf("%d:%s:%s", r.Index, m.Path, m.Node.Name))
				}
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(plain) {
			t.Fatalf("workers=%d: explain located %d, plain located %d", workers, len(got), len(plain))
		}
		for i := range got {
			if got[i] != plain[i] {
				t.Fatalf("workers=%d: explain match %d = %s, plain = %s", workers, i, got[i], plain[i])
			}
		}
	}
}

func TestRunLimitAborts(t *testing.T) {
	input := feed(20)
	names := ha.NewNames()
	cq := compile(t, names, "[* ; a ; b .] entry")
	_, err := Run(context.Background(), strings.NewReader(input), cq,
		Config{Workers: 4, MaxRecordNodes: 2},
		func(r *Result) error { return nil })
	if _, ok := err.(*xmlhedge.LimitError); !ok {
		t.Fatalf("err = %v, want *xmlhedge.LimitError", err)
	}
}
