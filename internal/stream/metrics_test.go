package stream

import (
	"context"
	"strings"
	"testing"

	"xpe/internal/ha"
	"xpe/internal/metrics"
)

// TestRunMetricsAccounting: one streaming run flushes consistent splitter
// and stage metrics for both the sequential and the parallel engine.
func TestRunMetricsAccounting(t *testing.T) {
	for _, workers := range []int{1, 3} {
		names := ha.NewNames()
		cq := compile(t, names, "[* ; a ; b .] (entry|feed)*")
		reg := &metrics.Metrics{}
		input := feed(40)
		stats, err := Run(context.Background(), strings.NewReader(input), cq,
			Config{Workers: workers, Metrics: reg},
			func(*Result) error { return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		s := reg.Snapshot()
		if s.Split.Records != stats.Records {
			t.Errorf("workers=%d: split records = %d, stats %d", workers, s.Split.Records, stats.Records)
		}
		if s.Split.Nodes != stats.Nodes {
			t.Errorf("workers=%d: split nodes = %d, stats %d", workers, s.Split.Nodes, stats.Nodes)
		}
		if s.Split.Bytes != stats.Bytes || s.Split.Bytes != int64(len(input)) {
			t.Errorf("workers=%d: split bytes = %d, stats %d, input %d", workers, s.Split.Bytes, stats.Bytes, len(input))
		}
		if s.Stream.Runs != 1 {
			t.Errorf("workers=%d: runs = %d, want 1", workers, s.Stream.Runs)
		}
		if s.Stream.Workers != int64(workers) {
			t.Errorf("workers=%d: workers gauge = %d", workers, s.Stream.Workers)
		}
		if s.Stream.EvalTime.Count != stats.Records || s.Stream.RecordLatency.Count != stats.Records {
			t.Errorf("workers=%d: eval count %d latency count %d, want %d records",
				workers, s.Stream.EvalTime.Count, s.Stream.RecordLatency.Count, stats.Records)
		}
		if s.Stream.DeliverTime.Count != stats.Records {
			t.Errorf("workers=%d: deliver count = %d, want %d", workers, s.Stream.DeliverTime.Count, stats.Records)
		}
		if s.Stream.WallTime.Count != 1 || s.Stream.WallTime.TotalNs <= 0 {
			t.Errorf("workers=%d: wall time = %+v, want one positive run", workers, s.Stream.WallTime)
		}
		if s.Split.ArenaNodesReused+s.Split.ArenaChunkAllocs == 0 {
			t.Errorf("workers=%d: arena counters empty", workers)
		}
	}
}

// TestRunParallelBytesAfterStop regression-tests the producer/collector
// ordering fix: when a yield stops the stream early, the collector must
// wait for the producer's final input-offset store before reading it —
// Stats.Bytes has to reflect real consumption, not a stale zero.
func TestRunParallelBytesAfterStop(t *testing.T) {
	for i := 0; i < 20; i++ {
		names := ha.NewNames()
		cq := compile(t, names, "[* ; a ; b .] (entry|feed)*")
		stats, err := Run(context.Background(), strings.NewReader(feed(200)), cq,
			Config{Workers: 4},
			func(*Result) error { return ErrStop })
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bytes <= 0 {
			t.Fatalf("iteration %d: stats.Bytes = %d after ErrStop, want > 0", i, stats.Bytes)
		}
	}
}

// TestRunMetricsDifferential: attaching a sink must not change what the
// stream delivers.
func TestRunMetricsDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		names := ha.NewNames()
		cq := compile(t, names, "[* ; a ; b .] (entry|feed)*")
		input := feed(30)
		plain, plainStats := collectRun(t, input, cq, Config{Workers: workers})
		sunk, sunkStats := collectRun(t, input, cq, Config{Workers: workers, Metrics: &metrics.Metrics{}})
		if len(plain) != len(sunk) {
			t.Fatalf("workers=%d: %d matches without sink, %d with", workers, len(plain), len(sunk))
		}
		for i := range plain {
			if plain[i] != sunk[i] {
				t.Errorf("workers=%d: match %d = %q without sink, %q with", workers, i, plain[i], sunk[i])
			}
		}
		if plainStats != sunkStats {
			t.Errorf("workers=%d: stats diverge: %+v vs %+v", workers, plainStats, sunkStats)
		}
	}
}
