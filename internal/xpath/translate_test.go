package xpath

import (
	"math/rand"
	"testing"

	"xpe/internal/core"
	"xpe/internal/ha"
	"xpe/internal/hedge"
)

var translatable = []string{
	"/doc/section/figure",
	"//figure",
	"/doc//figure",
	"//section/figure",
	"//figure[following-sibling::table]",
	"//figure[preceding-sibling::table]",
	"//figure[following-sibling::*[1][self::table]]",
	"//figure[preceding-sibling::*[1][self::table]]",
	"//section[figure]",
	"//section[figure][table]",
	"//*",
	"/doc/*/figure",
	"//section[figure][figure]",
}

var docLabels = []string{"doc", "section", "figure", "table", "para"}

// TestTranslateDifferential compares the XPath engine against the
// translated PHR evaluated by Algorithm 1, node for node, on random
// documents — the executable form of the Section 2 embedding claim.
func TestTranslateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := hedge.RandConfig{Symbols: docLabels, Vars: []string{"x"}, MaxDepth: 5, MaxWidth: 4}
	for _, src := range translatable {
		p := MustParse(src)
		q, err := Translate(p, docLabels, []string{"x"})
		if err != nil {
			t.Fatalf("Translate(%q): %v", src, err)
		}
		names := ha.NewNames()
		for _, l := range docLabels {
			names.Syms.Intern(l)
		}
		names.Vars.Intern("x")
		cq, err := core.CompileQuery(q, names)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		total := 0
		for i := 0; i < 40; i++ {
			h := hedge.Random(rng, cfg)
			d := NewDoc(h)
			want := map[*hedge.Node]bool{}
			for _, n := range p.Select(d) {
				want[n] = true
			}
			got := cq.Select(h)
			total += len(want)
			h.Visit(func(path hedge.Path, n *hedge.Node) bool {
				if got.Located[n] != want[n] {
					t.Fatalf("%q: disagreement at %v in %q: phr=%v xpath=%v",
						src, path, h, got.Located[n], want[n])
				}
				return true
			})
		}
		if total == 0 {
			t.Logf("%q: no matches in 40 random documents (weak coverage)", src)
		}
	}
}

func TestTranslateRejectsOutsideFragment(t *testing.T) {
	bad := []string{
		"//figure/ancestor::section",
		"//section/figure[2]",
		"//figure/..",
		"//section[figure/table]",
		"//section[figure]/para", // child-existence on a non-final step
		"//figure[following-sibling::table][following-sibling::para]",
	}
	for _, src := range bad {
		if _, err := Translate(MustParse(src), docLabels, nil); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}

func TestTranslateUnknownLabel(t *testing.T) {
	if _, err := Translate(MustParse("/nosuch"), docLabels, nil); err == nil {
		t.Error("unknown name test should fail against the closed alphabet")
	}
}
