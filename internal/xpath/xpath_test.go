package xpath

import (
	"testing"

	"xpe/internal/hedge"
)

func doc(t *testing.T) (*Doc, hedge.Hedge) {
	t.Helper()
	h := hedge.MustParse("doc<section<figure table figure note> section<figure> para<$x>>")
	return NewDoc(h), h
}

func sel(t *testing.T, d *Doc, src string) []string {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	nodes := p.Select(d)
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

func TestChildAndDescendant(t *testing.T) {
	d, _ := doc(t)
	if got := sel(t, d, "/doc/section/figure"); len(got) != 3 {
		t.Fatalf("child figures = %v", got)
	}
	if got := sel(t, d, "//figure"); len(got) != 3 {
		t.Fatalf("descendant figures = %v", got)
	}
	if got := sel(t, d, "//section"); len(got) != 2 {
		t.Fatalf("sections = %v", got)
	}
	if got := sel(t, d, "/doc"); len(got) != 1 || got[0] != "doc" {
		t.Fatalf("doc = %v", got)
	}
	if got := sel(t, d, "/section"); len(got) != 0 {
		t.Fatalf("top-level section = %v", got)
	}
}

func TestWildcardAndText(t *testing.T) {
	d, _ := doc(t)
	if got := sel(t, d, "/doc/*"); len(got) != 3 {
		t.Fatalf("children = %v", got)
	}
	p := MustParse("//para/text()")
	nodes := p.Select(d)
	if len(nodes) != 1 || nodes[0].Kind != hedge.Var {
		t.Fatalf("text nodes = %v", nodes)
	}
}

func TestSiblingAxes(t *testing.T) {
	d, h := doc(t)
	// Figures whose immediately following sibling is a table — the
	// introduction's example.
	got := MustParse("//figure[following-sibling::*[1][self::table]]").Select(d)
	if len(got) != 1 {
		t.Fatalf("got %d nodes", len(got))
	}
	if got[0] != h[0].Children[0].Children[0] {
		t.Fatal("wrong node located")
	}
	// Preceding sibling.
	got = MustParse("//figure[preceding-sibling::table]").Select(d)
	if len(got) != 1 || got[0] != h[0].Children[0].Children[2] {
		t.Fatalf("preceding-sibling = %v", got)
	}
}

func TestParentAncestorSelf(t *testing.T) {
	d, _ := doc(t)
	if got := sel(t, d, "//figure/.."); len(got) != 2 {
		t.Fatalf("parents = %v", got)
	}
	if got := sel(t, d, "//figure/ancestor::doc"); len(got) != 1 {
		t.Fatalf("ancestors = %v", got)
	}
	if got := sel(t, d, "//table/self::table"); len(got) != 1 {
		t.Fatalf("self = %v", got)
	}
	if got := sel(t, d, "//table/self::figure"); len(got) != 0 {
		t.Fatalf("self mismatch = %v", got)
	}
}

func TestPositionalPredicates(t *testing.T) {
	d, h := doc(t)
	first := h[0].Children[0].Children[0]
	got := MustParse("//section/figure[1]").Select(d)
	if len(got) != 2 { // first figure of each section
		t.Fatalf("figure[1] per section = %d nodes", len(got))
	}
	if got[0] != first {
		t.Fatal("wrong first figure")
	}
	got = MustParse("/doc/section[2]/figure").Select(d)
	if len(got) != 1 {
		t.Fatalf("section[2] figures = %v", got)
	}
}

func TestExistencePredicates(t *testing.T) {
	d, _ := doc(t)
	if got := sel(t, d, "//section[figure]"); len(got) != 2 {
		t.Fatalf("sections with figures = %v", got)
	}
	if got := sel(t, d, "//section[note]"); len(got) != 1 {
		t.Fatalf("sections with notes = %v", got)
	}
	if got := sel(t, d, "//section[table/missing]"); len(got) != 0 {
		t.Fatalf("impossible predicate = %v", got)
	}
}

func TestDocumentOrderAndDedup(t *testing.T) {
	d, h := doc(t)
	p := MustParse("//figure/ancestor::*/figure")
	nodes := p.Select(d)
	// All figures, each once, in document order.
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	if nodes[0] != h[0].Children[0].Children[0] {
		t.Fatal("not in document order")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "/", "//", "foo::a", "a[", "a[]", "a[0]", "a/", "a[b"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRendering(t *testing.T) {
	for _, src := range []string{
		"/doc/section/figure",
		"//figure[following-sibling::*[1][self::table]]",
	} {
		p := MustParse(src)
		p2 := MustParse(p.String())
		if p.String() != p2.String() {
			t.Fatalf("unstable rendering: %q vs %q", p.String(), p2.String())
		}
	}
}
