// Package xpath implements a small XPath-1.0-subset engine evaluated
// directly on hedges. It is the "industrial comparator" of the paper's
// introduction and related-work discussion (Section 2): sibling-aware
// queries like //figure[following-sibling::*[1][self::table]] are
// expressible here and as pointed hedge representations, which experiment
// E5 exploits; conversely, queries like "every ancestor is labeled a" (the
// paper's a* example) are expressible as PHRs but not in this fragment of
// XPath.
//
// Supported grammar:
//
//	path      := '/'? steps | '//' steps          (relative paths start at
//	                                               the top-level nodes)
//	steps     := step (('/' | '//') step)*
//	step      := axis? nodetest predicate*
//	axis      := ('child' | 'descendant' | 'descendant-or-self' | 'self' |
//	              'parent' | 'ancestor' | 'following-sibling' |
//	              'preceding-sibling') '::'
//	nodetest  := NAME | '*' | 'text()'
//	predicate := '[' path ']'                     (existence)
//	           | '[' INTEGER ']'                  (position)
//
// '//' abbreviates /descendant-or-self::*/ in the usual way.
package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"xpe/internal/hedge"
)

// Axis enumerates the supported axes.
type Axis int

// Supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAncestor
	AxisFollowingSibling
	AxisPrecedingSibling
)

var axisNames = map[string]Axis{
	"child":              AxisChild,
	"descendant":         AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf,
	"self":               AxisSelf,
	"parent":             AxisParent,
	"ancestor":           AxisAncestor,
	"following-sibling":  AxisFollowingSibling,
	"preceding-sibling":  AxisPrecedingSibling,
}

// reverseAxis reports whether position() counts backwards (XPath's reverse
// document order for ancestor/preceding axes).
func (a Axis) reverse() bool {
	return a == AxisAncestor || a == AxisPrecedingSibling || a == AxisParent
}

// NodeTest is a step's node test.
type NodeTest struct {
	Name string // "*" = any element; "text()" = text leaves
}

// Predicate filters a step's node list.
type Predicate struct {
	Path     *Path // nil for positional predicates
	Position int   // 1-based, when Path is nil
}

// Step is one location step.
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Predicate
}

// Path is a parsed location path.
type Path struct {
	Absolute bool
	Steps    []Step
}

// String renders the path.
func (p *Path) String() string {
	var b strings.Builder
	if p.Absolute {
		b.WriteByte('/')
	}
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteByte('/')
		}
		for name, a := range axisNames {
			if a == s.Axis && a != AxisChild {
				b.WriteString(name)
				b.WriteString("::")
				break
			}
		}
		b.WriteString(s.Test.Name)
		for _, pr := range s.Preds {
			b.WriteByte('[')
			if pr.Path != nil {
				b.WriteString(pr.Path.String())
			} else {
				b.WriteString(strconv.Itoa(pr.Position))
			}
			b.WriteByte(']')
		}
	}
	return b.String()
}

// Doc indexes a hedge for axis navigation.
type Doc struct {
	Root    hedge.Hedge
	parents map[*hedge.Node]*hedge.Node
	pos     map[*hedge.Node]int
	order   map[*hedge.Node]int
}

// NewDoc indexes h.
func NewDoc(h hedge.Hedge) *Doc {
	d := &Doc{
		Root:    h,
		parents: map[*hedge.Node]*hedge.Node{},
		pos:     map[*hedge.Node]int{},
		order:   map[*hedge.Node]int{},
	}
	count := 0
	var rec func(h hedge.Hedge, parent *hedge.Node)
	rec = func(h hedge.Hedge, parent *hedge.Node) {
		for i, n := range h {
			d.parents[n] = parent
			d.pos[n] = i
			d.order[n] = count
			count++
			if n.Kind == hedge.Elem {
				rec(n.Children, n)
			}
		}
	}
	rec(h, nil)
	return d
}

// siblings returns the sibling list of n (the top-level hedge for roots).
func (d *Doc) siblings(n *hedge.Node) hedge.Hedge {
	if p := d.parents[n]; p != nil {
		return p.Children
	}
	return d.Root
}

// Select evaluates the path with the top-level nodes as context and returns
// the result in document order.
func (p *Path) Select(d *Doc) []*hedge.Node {
	// Context: for absolute paths (and in this engine, relative ones too)
	// evaluation starts at a virtual root whose children are the top-level
	// nodes.
	cur := []*hedge.Node{nil} // nil = virtual root
	for _, s := range p.Steps {
		next := map[*hedge.Node]bool{}
		var ordered []*hedge.Node
		for _, ctx := range cur {
			for _, n := range s.apply(d, ctx) {
				if !next[n] {
					next[n] = true
					ordered = append(ordered, n)
				}
			}
		}
		cur = ordered
	}
	// Filter out the virtual root and sort by document order.
	var out []*hedge.Node
	for _, n := range cur {
		if n != nil {
			out = append(out, n)
		}
	}
	sortByOrder(d, out)
	return out
}

func sortByOrder(d *Doc, ns []*hedge.Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && d.order[ns[j-1]] > d.order[ns[j]]; j-- {
			ns[j-1], ns[j] = ns[j], ns[j-1]
		}
	}
}

// apply evaluates one step from a context node (nil = virtual root).
func (s *Step) apply(d *Doc, ctx *hedge.Node) []*hedge.Node {
	var axisNodes []*hedge.Node
	collectDesc := func(h hedge.Hedge) {
		h.Visit(func(_ hedge.Path, n *hedge.Node) bool {
			axisNodes = append(axisNodes, n)
			return true
		})
	}
	children := func() hedge.Hedge {
		if ctx == nil {
			return d.Root
		}
		if ctx.Kind == hedge.Elem {
			return ctx.Children
		}
		return nil
	}
	switch s.Axis {
	case AxisChild:
		axisNodes = append(axisNodes, children()...)
	case AxisDescendant:
		collectDesc(children())
	case AxisDescendantOrSelf:
		// The (possibly virtual-root) context itself belongs to the axis;
		// only the node() test matches the virtual root.
		axisNodes = append(axisNodes, ctx)
		collectDesc(children())
	case AxisSelf:
		if ctx != nil {
			axisNodes = append(axisNodes, ctx)
		}
	case AxisParent:
		if ctx != nil {
			if p := d.parents[ctx]; p != nil {
				axisNodes = append(axisNodes, p)
			}
		}
	case AxisAncestor:
		for n := ctx; n != nil; {
			n = d.parents[n]
			if n != nil {
				axisNodes = append(axisNodes, n)
			}
		}
	case AxisFollowingSibling:
		if ctx != nil {
			sibs := d.siblings(ctx)
			for i := d.pos[ctx] + 1; i < len(sibs); i++ {
				axisNodes = append(axisNodes, sibs[i])
			}
		}
	case AxisPrecedingSibling:
		if ctx != nil {
			sibs := d.siblings(ctx)
			for i := d.pos[ctx] - 1; i >= 0; i-- {
				axisNodes = append(axisNodes, sibs[i])
			}
		}
	}
	// Node test.
	var tested []*hedge.Node
	for _, n := range axisNodes {
		if s.Test.matches(n) {
			tested = append(tested, n)
		}
	}
	// Predicates, applied in sequence; position() is the index in the
	// current list (already in axis order).
	for _, pr := range s.Preds {
		var kept []*hedge.Node
		for i, n := range tested {
			if pr.holds(d, n, i+1) {
				kept = append(kept, n)
			}
		}
		tested = kept
	}
	return tested
}

func (t NodeTest) matches(n *hedge.Node) bool {
	if n == nil { // virtual root
		return t.Name == "node()"
	}
	switch t.Name {
	case "*":
		return n.Kind == hedge.Elem
	case "node()":
		return true
	case "text()":
		return n.Kind == hedge.Var
	default:
		return n.Kind == hedge.Elem && n.Name == t.Name
	}
}

func (pr Predicate) holds(d *Doc, n *hedge.Node, position int) bool {
	if pr.Path == nil {
		return position == pr.Position
	}
	// Existence of the relative path from n.
	cur := []*hedge.Node{n}
	for _, s := range pr.Path.Steps {
		var next []*hedge.Node
		seen := map[*hedge.Node]bool{}
		for _, ctx := range cur {
			for _, m := range s.apply(d, ctx) {
				if !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	return len(cur) > 0
}

// Parse parses a location path.
func Parse(src string) (*Path, error) {
	p := &parser{input: src}
	path, err := p.path()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errf("unexpected trailing input")
	}
	return path, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("xpath: at offset %d in %q: %s", p.pos, p.input, fmt.Sprintf(format, args...))
}

func (p *parser) eof() bool { return p.pos >= len(p.input) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) path() (*Path, error) {
	path := &Path{}
	if strings.HasPrefix(p.input[p.pos:], "//") {
		p.pos += 2
		path.Absolute = true
		path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Name: "node()"}})
	} else if p.peek() == '/' {
		p.pos++
		path.Absolute = true
	}
	for {
		st, err := p.step()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, *st)
		if strings.HasPrefix(p.input[p.pos:], "//") {
			p.pos += 2
			path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Name: "node()"}})
			continue
		}
		if p.peek() == '/' {
			p.pos++
			continue
		}
		return path, nil
	}
}

func (p *parser) step() (*Step, error) {
	st := &Step{Axis: AxisChild}
	if p.peek() == '.' {
		if strings.HasPrefix(p.input[p.pos:], "..") {
			p.pos += 2
			st.Axis = AxisParent
			st.Test = NodeTest{Name: "*"}
			return st, nil
		}
		p.pos++
		st.Axis = AxisSelf
		st.Test = NodeTest{Name: "*"}
		return st, nil
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(p.input[p.pos:], "::") {
		axis, ok := axisNames[name]
		if !ok {
			return nil, p.errf("unknown axis %q", name)
		}
		st.Axis = axis
		p.pos += 2
		name, err = p.name()
		if err != nil {
			return nil, err
		}
	}
	if (name == "text" || name == "node") && strings.HasPrefix(p.input[p.pos:], "()") {
		p.pos += 2
		name += "()"
	}
	st.Test = NodeTest{Name: name}
	for p.peek() == '[' {
		p.pos++
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		if p.peek() != ']' {
			return nil, p.errf("expected ']'")
		}
		p.pos++
		st.Preds = append(st.Preds, *pred)
	}
	return st, nil
}

func (p *parser) predicate() (*Predicate, error) {
	if c := p.peek(); c >= '0' && c <= '9' {
		start := p.pos
		for !p.eof() && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.input[start:p.pos])
		if err != nil || n < 1 {
			return nil, p.errf("bad position predicate")
		}
		return &Predicate{Position: n}, nil
	}
	// A relative path; scan to the matching ']'.
	start := p.pos
	depth := 0
	for !p.eof() {
		switch p.input[p.pos] {
		case '[':
			depth++
		case ']':
			if depth == 0 {
				sub, err := Parse(p.input[start:p.pos])
				if err != nil {
					return nil, err
				}
				return &Predicate{Path: sub}, nil
			}
			depth--
		}
		p.pos++
	}
	return nil, p.errf("unterminated predicate")
}

func (p *parser) name() (string, error) {
	start := p.pos
	if p.eof() {
		return "", p.errf("expected a name")
	}
	if p.peek() == '*' {
		p.pos++
		return "*", nil
	}
	r := rune(p.input[p.pos])
	if !(r == '_' || unicode.IsLetter(r)) {
		return "", p.errf("expected a name")
	}
	p.pos++
	for !p.eof() {
		r := rune(p.input[p.pos])
		if r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r) {
			p.pos++
			continue
		}
		break
	}
	return p.input[start:p.pos], nil
}
