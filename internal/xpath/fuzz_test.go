package xpath

import (
	"testing"

	"xpe/internal/hedge"
)

// FuzzParse asserts the XPath parser never panics, renders stably, and that
// evaluation of parsed paths never panics either.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"/doc/section/figure",
		"//figure[following-sibling::*[1][self::table]]",
		"//section[figure][2]",
		"a/..//b/text()",
		"self::*",
		"//",
		"a[",
	} {
		f.Add(s)
	}
	doc := NewDoc(hedge.MustParse("doc<section<figure table> para<$x>>"))
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, p.String(), err)
		}
		if p2.String() != p.String() {
			t.Fatalf("unstable rendering for %q", src)
		}
		p.Select(doc) // must not panic
	})
}
