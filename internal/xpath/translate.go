package xpath

import (
	"fmt"

	"xpe/internal/core"
	"xpe/internal/hre"
	"xpe/internal/sre"
)

// Translate compiles an XPath location path from the supported fragment
// into a selection query (pointed hedge representation, plus a subhedge
// expression for final-step child predicates), witnessing the Section 2
// claim that XPath's path core with sibling predicates embeds into the
// paper's formalism. labels is the closed-world element alphabet and vars
// the variable (text-leaf) alphabet: "any label" steps expand over labels,
// and XPath's element-only '*' skips variable leaves, which the sibling
// translations must account for.
//
// Supported fragment:
//
//   - absolute paths of child steps and '//' (descendant-or-self::node())
//   - name tests NAME and *
//   - on any step, sibling predicates:
//     [following-sibling::NAME]             — some younger sibling is NAME
//     [preceding-sibling::NAME]             — some elder sibling is NAME
//     [following-sibling::*[1][self::NAME]] — the next element sibling is NAME
//     [preceding-sibling::*[1][self::NAME]] — the previous element sibling is NAME
//   - on the final step, child-existence predicates [NAME] (they become
//     the subhedge expression e₁ of select(e₁, e₂))
//
// Anything else returns an error. The PHR base sequence is emitted in the
// paper's bottom-up order (final step first).
func Translate(p *Path, labels, vars []string) (*core.Query, error) {
	if len(p.Steps) == 0 {
		return nil, fmt.Errorf("xpath: empty path")
	}
	tr := &translator{phr: &core.PHR{}, labels: labels, vars: vars}
	var parts []*sre.Expr
	for si, st := range p.Steps {
		last := si == len(p.Steps)-1
		switch st.Axis {
		case AxisChild:
			alt, subExpr, err := tr.childStep(st, last)
			if err != nil {
				return nil, err
			}
			if subExpr != nil {
				tr.sub = subExpr
			}
			parts = append(parts, alt)
		case AxisDescendantOrSelf:
			if (st.Test.Name != "*" && st.Test.Name != "node()") || len(st.Preds) != 0 {
				return nil, fmt.Errorf("xpath: only bare '//' descendant steps are translatable")
			}
			parts = append(parts, sre.Star(tr.anyLabelAlt()))
		default:
			return nil, fmt.Errorf("xpath: axis of step %d is outside the translatable fragment", si+1)
		}
	}
	// Reverse: Definition 19 reads decompositions from the node's level up.
	rev := make([]*sre.Expr, len(parts))
	for i, e := range parts {
		rev[len(parts)-1-i] = e
	}
	tr.phr.Expr = sre.Cat(rev...)
	return &core.Query{Subhedge: tr.sub, Envelope: tr.phr}, nil
}

type translator struct {
	phr    *core.PHR
	labels []string
	vars   []string
	sub    *hre.Expr
}

// childStep renders one child step as an alternation of bases, extracting
// sibling conditions (and, on the final step, child-existence predicates).
func (tr *translator) childStep(st Step, last bool) (*sre.Expr, *hre.Expr, error) {
	var left, right *hre.Expr
	var subs []*hre.Expr
	for _, pr := range st.Preds {
		if pr.Path == nil {
			return nil, nil, fmt.Errorf("xpath: positional predicates are only translatable inside sibling predicates")
		}
		l, r, sub, err := tr.classifyPredicate(pr.Path, last)
		if err != nil {
			return nil, nil, err
		}
		if l != nil {
			if left != nil {
				return nil, nil, fmt.Errorf("xpath: at most one preceding-sibling predicate per step")
			}
			left = l
		}
		if r != nil {
			if right != nil {
				return nil, nil, fmt.Errorf("xpath: at most one following-sibling predicate per step")
			}
			right = r
		}
		if sub != nil {
			// XPath existence predicates are idempotent: [N][N] ≡ [N].
			dup := false
			for _, prev := range subs {
				if prev.String() == sub.String() {
					dup = true
					break
				}
			}
			if !dup {
				subs = append(subs, sub)
			}
		}
	}
	var subExpr *hre.Expr
	for _, s := range subs {
		if subExpr == nil {
			subExpr = s
		} else {
			// Conjunction of containment: both orders.
			subExpr = hre.Alt(hre.Cat(subExpr, s), hre.Cat(s, subExpr))
		}
	}
	names := tr.stepLabels(st.Test)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("xpath: name test %q matches no label of the closed alphabet", st.Test.Name)
	}
	alts := make([]*sre.Expr, len(names))
	for i, name := range names {
		alts[i] = tr.addBase(core.BaseRep{Left: left, Label: name, Right: right})
	}
	return sre.Alt(alts...), subExpr, nil
}

// classifyPredicate maps a predicate path to a side condition or a
// child-existence expression.
func (tr *translator) classifyPredicate(p *Path, last bool) (left, right, sub *hre.Expr, err error) {
	steps := p.Steps
	switch {
	// following-sibling::NAME  /  preceding-sibling::NAME
	case len(steps) == 1 && steps[0].Axis == AxisFollowingSibling && len(steps[0].Preds) == 0 && steps[0].Test.Name != "*":
		return nil, containsTop(steps[0].Test.Name), nil, nil
	case len(steps) == 1 && steps[0].Axis == AxisPrecedingSibling && len(steps[0].Preds) == 0 && steps[0].Test.Name != "*":
		return containsTop(steps[0].Test.Name), nil, nil, nil
	// following-sibling::*[1][self::NAME] and the preceding variant
	case len(steps) == 1 && steps[0].Test.Name == "*" && len(steps[0].Preds) == 2 &&
		steps[0].Preds[0].Path == nil && steps[0].Preds[0].Position == 1 &&
		steps[0].Preds[1].Path != nil && isSelfName(steps[0].Preds[1].Path):
		name := steps[0].Preds[1].Path.Steps[0].Test.Name
		switch steps[0].Axis {
		case AxisFollowingSibling:
			// XPath's '*' counts element siblings only, so variable leaves
			// may precede the required element.
			return nil, hre.Cat(tr.varStar(), hre.Elem(name, hre.Any()), hre.Any()), nil, nil
		case AxisPrecedingSibling:
			return hre.Cat(hre.Any(), hre.Elem(name, hre.Any()), tr.varStar()), nil, nil, nil
		}
	// child existence: NAME (final step only)
	case len(steps) == 1 && steps[0].Axis == AxisChild && len(steps[0].Preds) == 0 && steps[0].Test.Name != "*" && steps[0].Test.Name != "text()":
		if !last {
			return nil, nil, nil, fmt.Errorf("xpath: child-existence predicates are only translatable on the final step")
		}
		return nil, nil, containsTop(steps[0].Test.Name), nil
	}
	return nil, nil, nil, fmt.Errorf("xpath: predicate %q is outside the translatable fragment", p)
}

func isSelfName(p *Path) bool {
	return len(p.Steps) == 1 && p.Steps[0].Axis == AxisSelf &&
		p.Steps[0].Test.Name != "*" && len(p.Steps[0].Preds) == 0
}

// containsTop is the hedge language "some top-level element is NAME":
// . NAME<.> .
func containsTop(name string) *hre.Expr {
	return hre.Cat(hre.Any(), hre.Elem(name, hre.Any()), hre.Any())
}

// varStar matches any run of variable (text) leaves.
func (tr *translator) varStar() *hre.Expr {
	if len(tr.vars) == 0 {
		return hre.Eps()
	}
	alts := make([]*hre.Expr, len(tr.vars))
	for i, v := range tr.vars {
		alts[i] = hre.Var(v)
	}
	return hre.Star(hre.Alt(alts...))
}

func (tr *translator) stepLabels(t NodeTest) []string {
	if t.Name == "*" {
		return tr.labels
	}
	for _, l := range tr.labels {
		if l == t.Name {
			return []string{l}
		}
	}
	return nil
}

// anyLabelAlt renders one "any label, any siblings" level.
func (tr *translator) anyLabelAlt() *sre.Expr {
	alts := make([]*sre.Expr, len(tr.labels))
	for i, name := range tr.labels {
		alts[i] = tr.addBase(core.BaseRep{Label: name})
	}
	return sre.Alt(alts...)
}

func (tr *translator) addBase(b core.BaseRep) *sre.Expr {
	tr.phr.Bases = append(tr.phr.Bases, b)
	return sre.Sym(fmt.Sprintf("t%d", len(tr.phr.Bases)-1))
}
