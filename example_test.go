package xpe_test

import (
	"fmt"

	"xpe"
)

// The introduction's motivating query: figures whose immediately following
// sibling is a table.
func Example() {
	eng := xpe.NewEngine()
	doc, _ := eng.ParseXMLString("<doc><sec><fig/><tab/><fig/></sec></doc>")
	q, _ := eng.CompileQuery("[* ; fig ; tab .] (sec|doc)*")
	for _, m := range q.Select(doc) {
		fmt.Println(m.Path, m.Term)
	}
	// Output: 1.1.1 fig
}

func ExampleEngine_CompileQuery() {
	eng := xpe.NewEngine()
	doc, _ := eng.ParseTerm("doc<sec<fig> sec<par> fig>")
	// Classical path expression: figures under any chain of secs under doc
	// (bases read from the node's level up to the top).
	q, _ := eng.CompileQuery("fig sec* [* ; doc ; *]")
	for _, m := range q.Select(doc) {
		fmt.Println(m.Path)
	}
	// Output:
	// 1.1.1
	// 1.3
}

func ExampleEngine_CompileXPath() {
	eng := xpe.NewEngine()
	doc, _ := eng.ParseXMLString("<doc><fig/><tab/><fig/></doc>")
	q, _ := eng.CompileXPath("//fig[following-sibling::*[1][self::tab]]")
	fmt.Println(len(q.Select(doc)))
	// Output: 1
}

func ExampleQuery_SelectBindings() {
	eng := xpe.NewEngine()
	doc, _ := eng.ParseTerm("doc<sec<fig>>")
	q, _ := eng.CompileQuery("fig sec@s* [* ; doc ; *]@d")
	for _, m := range q.SelectBindings(doc) {
		for _, b := range m.Bindings {
			fmt.Println(b.Name, b.Path)
		}
	}
	// Output:
	// d 1
	// s 1.1
}

// Provenance: Explain names the evidence behind each match — which
// envelope base consumed which ancestor, with the automaton state at
// every level of the spine.
func ExampleQuery_Explain() {
	eng := xpe.NewEngine()
	doc, _ := eng.ParseTerm("doc<sec<sec<fig>>>")
	q, _ := eng.CompileQuery("fig sec* [* ; doc ; *]")
	for _, ex := range q.Explain(doc) {
		fmt.Print(ex.String())
	}
	// Output:
	// 1.1.1.1 matches "fig sec* [* ; doc ; *]"
	//   doc        state 1   fired doc
	//   sec        state 2   fired sec
	//   sec        state 2   fired sec
	//   fig        state 3   fired fig
}

func ExampleQuery_Delete() {
	eng := xpe.NewEngine()
	doc, _ := eng.ParseTerm("doc<sec<fig par> fig>")
	q, _ := eng.CompileQuery("fig (sec|doc)*")
	fmt.Println(q.Delete(doc).Term())
	// Output: doc<sec<par>>
}

func ExampleSchema_TransformSelect() {
	eng := xpe.NewEngine()
	sch, _ := eng.ParseSchema(`
start = doc
element doc { sec* }
element sec { (fig | par)* }
element fig { empty }
element par { text* }
`)
	q, _ := eng.CompileQuery("select(fig*; [* ; sec ; *] doc)")
	out, _ := sch.TransformSelect(q, xpe.Subtrees)
	member, _ := eng.ParseTerm("sec<fig fig>")
	nonMember, _ := eng.ParseTerm("sec<par>")
	fmt.Println(out.Validate(member), out.Validate(nonMember))
	// Output: true false
}

func ExampleQuery_UniqueBindings() {
	eng := xpe.NewEngine()
	ok, _ := eng.CompileQuery("fig sec@s* [* ; doc ; *]")
	dup, _ := eng.CompileQuery("fig (sec@a | sec@b) [* ; doc ; *]")
	fmt.Println(ok.UniqueBindings(), dup.UniqueBindings())
	// Output: true false
}
