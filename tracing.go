package xpe

import (
	"io"
	"log/slog"

	"xpe/internal/trace"
)

// RecordTrace is the assembled trace of one evaluation unit: a streamed
// record (Index is its sequence number) or an in-memory document
// evaluation (Index -1, Query set). See internal/trace.RecordTrace for
// the field-by-field contract; the JSON encoding is stable.
type RecordTrace = trace.RecordTrace

// TraceEvent is a point-in-time annotation on a record trace: splitter
// recovery activity (token skims, raw resynchronizations, truncation)
// and record boundaries.
type TraceEvent = trace.Event

// FlightRecorder is a bounded ring of the most recent record traces — a
// "what just happened" surface that costs two clock reads per pipeline
// stage while attached and nothing when detached. Attach one per run
// via SelectOptions.Trace, or engine-wide via Engine.SetFlightRecorder
// (which also captures in-memory document evaluations). A FlightRecorder
// is safe for concurrent use; all methods are nil-safe.
type FlightRecorder struct {
	t *trace.Tracer
}

// NewFlightRecorder returns a recorder retaining the last capacity
// traces; capacity <= 0 selects the default of 64.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 64
	}
	return &FlightRecorder{t: trace.New(capacity)}
}

// tracer unwraps the internal ring, tolerating a nil receiver.
func (fr *FlightRecorder) tracer() *trace.Tracer {
	if fr == nil {
		return nil
	}
	return fr.t
}

// Traces returns the retained traces, oldest first (a copy).
func (fr *FlightRecorder) Traces() []RecordTrace { return fr.tracer().Traces() }

// Total returns the number of traces ever committed, retained or not.
func (fr *FlightRecorder) Total() int64 { return fr.tracer().Total() }

// Reset drops the retained traces and zeroes the commit count.
func (fr *FlightRecorder) Reset() { fr.tracer().Reset() }

// WriteJSON encodes the retained traces (oldest first) as indented JSON.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error { return fr.tracer().WriteJSON(w) }

// commitDoc records one in-memory document evaluation; Index -1 marks
// the absence of a record stream.
func (fr *FlightRecorder) commitDoc(query string, evalNS int64, nodes, matches int) {
	fr.tracer().Commit(RecordTrace{Index: -1, Query: query,
		EvalNS: evalNS, TotalNS: evalNS, Nodes: nodes, Matches: matches, Outcome: "ok"})
}

// SetFlightRecorder attaches fr engine-wide: in-memory document
// evaluations (Matches, Select, SelectCtx) commit a trace per call, and
// streaming runs without a per-run SelectOptions.Trace commit their
// record traces, all into fr's ring. Pass nil to detach. Attachment is
// atomic; evaluations in flight keep the recorder they started with.
func (e *Engine) SetFlightRecorder(fr *FlightRecorder) { e.recorder.Store(fr) }

// FlightRecorder returns the engine-wide recorder, nil when detached.
func (e *Engine) FlightRecorder() *FlightRecorder { return e.recorder.Load() }

// logSlowRecord is the default slow-record sink: a structured warning
// through the process-wide slog logger.
func logSlowRecord(rt RecordTrace) {
	args := []any{
		"record", rt.Index,
		"path", rt.Path,
		"total_ns", rt.TotalNS,
		"split_ns", rt.SplitNS,
		"eval_ns", rt.EvalNS,
		"deliver_ns", rt.DeliverNS,
		"nodes", rt.Nodes,
		"matches", rt.Matches,
		"outcome", rt.Outcome,
	}
	if rt.RequestID != "" {
		args = append(args, "request_id", rt.RequestID)
	}
	slog.Warn("xpe: slow record", args...)
}
