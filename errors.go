package xpe

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"

	"xpe/internal/core"
	"xpe/internal/xmlhedge"
)

// ParseError reports a malformed document at the facade boundary
// (ParseXML, ParseXMLString, ParseTerm, SelectStream). Use errors.As to
// recover it; Unwrap exposes the underlying decoder error.
type ParseError struct {
	// Line is the 1-based input line of the error, 0 when unknown (the
	// XML decoder reports lines; the term parser does not).
	Line int
	// Excerpt is the offending source line, "" when the input was not
	// retained (reader-based parses).
	Excerpt string
	// Msg is the decoder's diagnosis.
	Msg string
	// Err is the underlying error.
	Err error
}

func (e *ParseError) Error() string {
	switch {
	case e.Line > 0 && e.Excerpt != "":
		return fmt.Sprintf("xpe: parse error at line %d near %q: %s", e.Line, e.Excerpt, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("xpe: parse error at line %d: %s", e.Line, e.Msg)
	default:
		return fmt.Sprintf("xpe: parse error: %s", e.Msg)
	}
}

func (e *ParseError) Unwrap() error { return e.Err }

// CompileError reports a selection query, XPath expression, or schema
// grammar that failed to parse or compile (CompileQuery, CompileXPath,
// ParseSchema). Use errors.As to recover it.
type CompileError struct {
	// Source is the query or grammar text handed to the compiler.
	Source string
	// Offset is the byte offset the parser stopped at, -1 when unknown.
	Offset int
	// Excerpt is the source fragment around Offset, "" when unknown.
	Excerpt string
	// Msg is the parser's diagnosis.
	Msg string
	// Err is the underlying error.
	Err error
}

func (e *CompileError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("xpe: compile error at offset %d near %q: %s", e.Offset, e.Excerpt, e.Msg)
	}
	return fmt.Sprintf("xpe: compile error: %s", e.Msg)
}

func (e *CompileError) Unwrap() error { return e.Err }

// LimitError reports a streamed record exceeding a SelectOptions resource
// bound; the stream cannot continue past it. Use errors.As to recover it.
type LimitError struct {
	// Kind is the exceeded bound: "nodes" or "depth".
	Kind string
	// Limit is the configured bound.
	Limit int
	// Record is the 0-based index of the offending record.
	Record int
	// Path is the Dewey path of the record root in the input document.
	Path string
	// Err is the underlying error.
	Err error
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("xpe: record %d at %s exceeds %s limit %d", e.Record, e.Path, e.Kind, e.Limit)
}

func (e *LimitError) Unwrap() error { return e.Err }

// wrapParseErr converts a document parse failure into *ParseError. src is
// the full input when available (string parses), "" otherwise.
func wrapParseErr(err error, src string) error {
	if err == nil {
		return nil
	}
	pe := &ParseError{Msg: err.Error(), Err: err}
	var se *xml.SyntaxError
	if errors.As(err, &se) {
		pe.Line = se.Line
		pe.Msg = se.Msg
	}
	if pe.Line > 0 && src != "" {
		lines := strings.Split(src, "\n")
		if pe.Line <= len(lines) {
			pe.Excerpt = clip(strings.TrimSpace(lines[pe.Line-1]), 40)
		}
	}
	return pe
}

// wrapCompileErr converts a query/schema compilation failure into
// *CompileError, recovering position information from the core parser's
// structured errors when present.
func wrapCompileErr(err error, src string) error {
	if err == nil {
		return nil
	}
	ce := &CompileError{Source: src, Offset: -1, Msg: err.Error(), Err: err}
	var se *core.SyntaxError
	if errors.As(err, &se) {
		ce.Offset = se.Offset
		ce.Msg = se.Msg
		ce.Excerpt = excerptAt(se.Input, se.Offset)
	}
	return ce
}

// wrapStreamErr converts streaming-internal errors into their exported
// counterparts. Callers must pass yield-originated errors through
// unwrapped before reaching here: everything else a stream can fail with
// is a record limit, a cancellation, or a malformed input.
func wrapStreamErr(err error) error {
	if err == nil {
		return nil
	}
	var le *xmlhedge.LimitError
	if errors.As(err, &le) {
		return &LimitError{Kind: le.Kind, Limit: le.Limit, Record: le.Record, Path: le.Path.String(), Err: err}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return wrapParseErr(err, "")
}

// excerptAt returns a short window of src around offset.
func excerptAt(src string, offset int) string {
	if offset < 0 || offset > len(src) {
		return clip(src, 40)
	}
	start := offset - 20
	if start < 0 {
		start = 0
	}
	end := offset + 20
	if end > len(src) {
		end = len(src)
	}
	out := src[start:end]
	if start > 0 {
		out = "…" + out
	}
	if end < len(src) {
		out += "…"
	}
	return out
}

// clip truncates s to at most n bytes with an ellipsis.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
