package xpe

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"

	"xpe/internal/core"
	"xpe/internal/stream"
	"xpe/internal/xmlhedge"
)

// ParseError reports a malformed document at the facade boundary
// (ParseXML, ParseXMLString, ParseTerm, SelectStream). Use errors.As to
// recover it; Unwrap exposes the underlying decoder error.
type ParseError struct {
	// Line is the 1-based input line of the error, 0 when unknown (the
	// XML decoder reports lines; the term parser does not).
	Line int
	// Excerpt is the offending source line, "" when the input was not
	// retained (reader-based parses).
	Excerpt string
	// Msg is the decoder's diagnosis.
	Msg string
	// Err is the underlying error.
	Err error
}

func (e *ParseError) Error() string {
	switch {
	case e.Line > 0 && e.Excerpt != "":
		return fmt.Sprintf("xpe: parse error at line %d near %q: %s", e.Line, e.Excerpt, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("xpe: parse error at line %d: %s", e.Line, e.Msg)
	default:
		return fmt.Sprintf("xpe: parse error: %s", e.Msg)
	}
}

func (e *ParseError) Unwrap() error { return e.Err }

// CompileError reports a selection query, XPath expression, or schema
// grammar that failed to parse or compile (CompileQuery, CompileXPath,
// ParseSchema). Use errors.As to recover it.
type CompileError struct {
	// Source is the query or grammar text handed to the compiler.
	Source string
	// Offset is the byte offset the parser stopped at, -1 when unknown.
	Offset int
	// Excerpt is the source fragment around Offset, "" when unknown.
	Excerpt string
	// Msg is the parser's diagnosis.
	Msg string
	// Err is the underlying error.
	Err error
}

func (e *CompileError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("xpe: compile error at offset %d near %q: %s", e.Offset, e.Excerpt, e.Msg)
	}
	return fmt.Sprintf("xpe: compile error: %s", e.Msg)
}

func (e *CompileError) Unwrap() error { return e.Err }

// LimitError reports an exceeded SelectOptions resource bound. Kinds
// "nodes", "depth", "bytes", and "time" are record-scoped — with a Skip
// policy the stream continues past the offending record; kind "stream"
// (the whole-run input budget) always aborts. Use errors.As to recover it.
type LimitError struct {
	// Kind is the exceeded bound: "nodes", "depth", "bytes", "time", or
	// "stream".
	Kind string
	// Limit is the configured bound: a node count, a depth, a byte count,
	// or milliseconds for kind "time".
	Limit int
	// Record is the 0-based index of the offending record.
	Record int
	// Path is the Dewey path of the record root in the input document.
	Path string
	// Err is the underlying error.
	Err error
}

func (e *LimitError) Error() string {
	switch e.Kind {
	case "stream":
		return fmt.Sprintf("xpe: stream exceeds input budget of %d bytes", e.Limit)
	case "time":
		return fmt.Sprintf("xpe: record %d at %s exceeds evaluation timeout of %dms", e.Record, e.Path, e.Limit)
	default:
		return fmt.Sprintf("xpe: record %d at %s exceeds %s limit %d", e.Record, e.Path, e.Kind, e.Limit)
	}
}

func (e *LimitError) Unwrap() error { return e.Err }

// RecordError attributes a streaming failure to one record. It is what an
// ErrorPolicy receives, and what SelectStream returns when a policy aborts
// on a failed record. Err is the typed cause: *ParseError for malformed
// XML, *LimitError for an exceeded resource bound, *InternalError for a
// panicking evaluation. Use errors.As to recover it.
type RecordError struct {
	// Record is the 0-based index of the failed record. Failed records
	// consume an index, so skipping one leaves a gap in the delivered
	// sequence rather than renumbering its successors.
	Record int
	// Path is the Dewey path of the record root in the input document, ""
	// when the failure left it unknown (e.g. truncated input).
	Path string
	// Err is the typed cause.
	Err error
}

func (e *RecordError) Error() string {
	return fmt.Sprintf("xpe: record %d at %s: %v", e.Record, e.Path, e.Err)
}

func (e *RecordError) Unwrap() error { return e.Err }

// OptionError reports an invalid engine option. NewEngine has no error
// return, so the offending engine records the error and every subsequent
// compile entry point (CompileQuery, CompileXPath) returns it — loudly,
// instead of compiling under silently adjusted semantics. Use errors.As
// to recover it.
type OptionError struct {
	// Option is the option's constructor name, e.g.
	// "WithLazyTransitionBudget".
	Option string
	// Reason says what was wrong with the value.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("xpe: invalid engine option %s: %s", e.Option, e.Reason)
}

// InternalError reports a record evaluation that panicked: an engine bug
// surfaced by that record's content, contained so the Engine and the
// stream's other records stay usable. The stack identifies the panic site.
// Use errors.As to recover it.
type InternalError struct {
	// Record is the 0-based index of the record whose evaluation panicked.
	Record int
	// Path is the Dewey path of the record root in the input document.
	Path string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the panic site.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("xpe: internal error evaluating record %d at %s: %v", e.Record, e.Path, e.Value)
}

// wrapParseErr converts a document parse failure into *ParseError. src is
// the full input when available (string parses), "" otherwise.
func wrapParseErr(err error, src string) error {
	if err == nil {
		return nil
	}
	pe := &ParseError{Msg: err.Error(), Err: err}
	var se *xml.SyntaxError
	if errors.As(err, &se) {
		pe.Line = se.Line
		pe.Msg = se.Msg
	}
	if pe.Line > 0 && src != "" {
		lines := strings.Split(src, "\n")
		if pe.Line <= len(lines) {
			pe.Excerpt = clip(strings.TrimSpace(lines[pe.Line-1]), 40)
		}
	}
	return pe
}

// wrapCompileErr converts a query/schema compilation failure into
// *CompileError, recovering position information from the core parser's
// structured errors when present.
func wrapCompileErr(err error, src string) error {
	if err == nil {
		return nil
	}
	ce := &CompileError{Source: src, Offset: -1, Msg: err.Error(), Err: err}
	var se *core.SyntaxError
	if errors.As(err, &se) {
		ce.Offset = se.Offset
		ce.Msg = se.Msg
		ce.Excerpt = excerptAt(se.Input, se.Offset)
	}
	return ce
}

// wrapRecordFailure converts a stream-level record failure into the
// facade's *RecordError with a typed cause; timeoutMs is the configured
// RecordTimeout for the "time" LimitError's Limit field.
func wrapRecordFailure(se *stream.RecordError, timeoutMs int) *RecordError {
	return &RecordError{Record: se.Index, Path: se.Path.String(), Err: wrapRecordCause(se, timeoutMs)}
}

// wrapRecordCause types the cause of a record failure: a panicking
// evaluation, an evaluation timeout, a limit violation, or malformed XML.
func wrapRecordCause(se *stream.RecordError, timeoutMs int) error {
	var pe *stream.PanicError
	if errors.As(se.Err, &pe) {
		return &InternalError{Record: se.Index, Path: se.Path.String(), Value: pe.Value, Stack: pe.Stack}
	}
	if errors.Is(se.Err, stream.ErrRecordTimeout) {
		return &LimitError{Kind: "time", Limit: timeoutMs, Record: se.Index, Path: se.Path.String(), Err: se.Err}
	}
	var le *xmlhedge.LimitError
	if errors.As(se.Err, &le) {
		return &LimitError{Kind: le.Kind, Limit: le.Limit, Record: le.Record, Path: le.Path.String(), Err: se.Err}
	}
	return wrapParseErr(se.Err, "")
}

// wrapStreamErr converts streaming-internal errors into their exported
// counterparts. Callers must pass yield- and policy-originated errors
// through unwrapped before reaching here: everything else a stream can
// fail with is a record failure, a resource limit, a cancellation, or a
// malformed input.
func wrapStreamErr(err error, timeoutMs int) error {
	if err == nil {
		return nil
	}
	var fe *RecordError
	if errors.As(err, &fe) {
		return err // already facade-typed
	}
	var se *stream.RecordError
	if errors.As(err, &se) {
		// A record failure that aborted with a nil policy: panics and
		// timeouts reach here (splitter failures abort with the raw
		// error below, preserving the pre-policy surface).
		return wrapRecordFailure(se, timeoutMs)
	}
	var le *xmlhedge.LimitError
	if errors.As(err, &le) {
		return &LimitError{Kind: le.Kind, Limit: le.Limit, Record: le.Record, Path: le.Path.String(), Err: err}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return wrapParseErr(err, "")
}

// excerptAt returns a short window of src around offset, widened outward
// to rune boundaries so multibyte input never yields a torn excerpt.
func excerptAt(src string, offset int) string {
	if offset < 0 || offset > len(src) {
		return clip(src, 40)
	}
	start := offset - 20
	if start < 0 {
		start = 0
	}
	for start > 0 && !utf8.RuneStart(src[start]) {
		start--
	}
	end := offset + 20
	if end > len(src) {
		end = len(src)
	}
	for end < len(src) && !utf8.RuneStart(src[end]) {
		end++
	}
	out := src[start:end]
	if start > 0 {
		out = "…" + out
	}
	if end < len(src) {
		out += "…"
	}
	return out
}

// clip truncates s to at most n bytes with an ellipsis, backing up to a
// rune boundary so the cut never splits a multibyte character.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	return s[:n] + "…"
}
